#include "online_study.h"

#include <cstdarg>
#include <cstdio>

#include "exec/experiment_runner.h"
#include "online/online_policy.h"
#include "study/design_space.h"

namespace smtflex {

namespace {

void
appendf(std::string &out, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    char buf[512];
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    out += buf;
}

} // namespace

const std::vector<std::string> &
onlineStudyDesigns()
{
    static const std::vector<std::string> designs = {"4B", "3B5s", "2B10s"};
    return designs;
}

std::vector<MultiProgramWorkload>
onlineStudyWorkloads(const StudyOptions &options)
{
    std::vector<MultiProgramWorkload> mixes;
    // Heterogeneous SPEC mixes (balanced sampling, seed-deterministic):
    // the first three at 4 and at 8 threads.
    for (const std::size_t n : {std::size_t{4}, std::size_t{8}}) {
        const auto het =
            heterogeneousWorkloads(n, options.hetMixes, options.seed);
        for (std::size_t m = 0; m < 3 && m < het.size(); ++m)
            mixes.push_back(het[m]);
    }
    // PARSEC worker-kernel mixes: one memory-heavy, one compute-leaning.
    mixes.push_back(mixWorkload(
        {"blackscholes", "canneal", "streamcluster", "swaptions"}));
    mixes.push_back(
        mixWorkload({"bodytrack", "dedup", "ferret", "raytrace"}));
    // A blended SPEC+PARSEC mix at 8 threads.
    mixes.push_back(mixWorkload({"lbm", "hmmer", "canneal", "h264ref",
                                 "milc", "swaptions", "mcf", "freqmine"}));
    return mixes;
}

std::vector<OnlineStudyRow>
onlineStudy(StudyEngine &engine)
{
    // Prebuild the oracle table before fanning out (mirrors
    // homogeneousAt: its construction is itself a parallel region).
    engine.offline();

    struct RowSpec
    {
        std::string design;
        MultiProgramWorkload mix;
    };
    std::vector<RowSpec> specs;
    const auto mixes = onlineStudyWorkloads(engine.options());
    for (const auto &design : onlineStudyDesigns()) {
        for (const auto &mix : mixes)
            specs.push_back({design, mix});
    }

    exec::ExperimentRunner runner;
    return runner.mapItems(specs, [&](const RowSpec &spec) {
        const ChipConfig config = paperDesign(spec.design);
        OnlineStudyRow row;
        row.design = spec.design;
        row.workload = spec.mix.name;
        row.threads = static_cast<std::uint32_t>(spec.mix.size());
        row.naive = engine.multiprogramNaive(config, spec.mix);
        row.oracle = engine.multiprogram(config, spec.mix);
        for (const auto &policy : online::onlinePolicyNames())
            row.policies.push_back(
                engine.multiprogramOnline(config, spec.mix, policy));
        return row;
    });
}

std::string
onlineStudyText(StudyEngine &engine)
{
    const auto rows = onlineStudy(engine);
    std::string out;
    out += "Online scheduling vs offline oracle (simulated STP, ANTT in "
           "parentheses)\n\n";
    appendf(out, "%-6s %-34s %2s", "design", "mix", "n");
    appendf(out, "  %-14s %-14s", "naive", "oracle");
    for (const auto &policy : online::onlinePolicyNames())
        appendf(out, " %-14s", policy.c_str());
    out += "\n";
    for (const auto &row : rows) {
        appendf(out, "%-6s %-34s %2u", row.design.c_str(),
                row.workload.c_str(), row.threads);
        appendf(out, "  %5.3f (%5.3f) %5.3f (%5.3f)", row.naive.stp,
                row.naive.antt, row.oracle.stp, row.oracle.antt);
        for (const auto &policy : row.policies)
            appendf(out, " %5.3f (%5.3f)", policy.run.stp,
                    policy.run.antt);
        out += "\n";
    }
    return out;
}

} // namespace smtflex
