/**
 * @file
 * The experiment driver that regenerates the paper's evaluation: it runs
 * (and memoises) isolated characterisation runs, multi-program workloads
 * with the offline scheduling methodology, PARSEC application runs, and the
 * aggregations over thread-count distributions.
 */

#ifndef SMTFLEX_STUDY_STUDY_ENGINE_H
#define SMTFLEX_STUDY_STUDY_ENGINE_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"
#include "online/online_policy.h"
#include "power/power_model.h"
#include "sched/scheduler.h"
#include "sim/chip_config.h"
#include "study/result_cache.h"
#include "workload/multiprogram.h"
#include "workload/parsec.h"

namespace smtflex {

/** Global knobs of a study. */
struct StudyOptions
{
    /** Per-program instruction budget (the SimPoint substitute). */
    InstrCount budget = 12'000;
    /** Unmeasured warmup instructions per program (cold-start exclusion;
     * functional cache warmup handles the caches, this covers pipeline and
     * queue state). */
    InstrCount warmup = 3'000;
    /** Simulation seed. */
    std::uint64_t seed = 12'345;
    /** Cache file path; empty = no persistence. */
    std::string cachePath = "smtflex_cache.txt";
    /** Heterogeneous mixes per thread count (paper: 12). */
    std::uint32_t hetMixes = 12;
    /** Maximum thread count of the study (paper: 24). */
    std::uint32_t maxThreads = 24;
    /** Off-chip bandwidth in GB/s (8 default, 16 in Section 8.2). */
    double bandwidthGBps = 8.0;

    /**
     * Sweep resolution: thread counts actually simulated. When false
     * (default), counts above 8 are sampled every other value (9 is
     * represented by 10, etc.) — the curves are smooth there and the
     * saved simulations halve the campaign cost. SMTFLEX_FULLSWEEP=1
     * restores the paper's full 1..24 resolution.
     */
    bool fullSweep = false;

    /** Apply SMTFLEX_BUDGET / SMTFLEX_WARMUP / SMTFLEX_MIXES /
     * SMTFLEX_CACHE / SMTFLEX_SEED / SMTFLEX_FULLSWEEP overrides. */
    static StudyOptions fromEnv();
};

/** Metrics of one multi-program run. */
struct RunMetrics
{
    double stp = 0.0;  ///< system throughput (weighted speedup)
    double antt = 0.0; ///< average normalised turnaround time
    double powerGatedW = 0.0;   ///< avg chip power with idle cores gated
    double powerUngatedW = 0.0; ///< avg chip power without gating
    double cycles = 0.0;
    bool hitLimit = false;
};

/**
 * A memoised online scheduling decision (the serve `schedule` op's
 * payload): the placement, per-thread classes, predictions and decision
 * counters — everything the text rendering needs, in cacheable form.
 */
struct PlacementDecision
{
    Placement placement;
    /** Classifier bucket per thread, workload order. */
    std::vector<online::ThreadClass> classes;
    double predictedStp = 0.0;
    double predictedAntt = 0.0;
    std::uint32_t epochs = 0;
    double migrations = 0.0;
    double reclassifications = 0.0;
    double quantaSampled = 0.0;
    double samplesRun = 0.0;
};

/** Metrics of one multi-program run under an online placement. */
struct ScheduleMetrics
{
    RunMetrics run;
    double predictedStp = 0.0;
    double predictedAntt = 0.0;
};

/** Metrics of one multi-threaded (PARSEC) run. */
struct ParsecMetrics
{
    double roiCycles = 0.0;
    double totalCycles = 0.0;
    double powerGatedW = 0.0;
    bool completed = false;
    std::vector<double> roiActiveThreadFractions;
};

/**
 * Memoised experiment driver. All results are deterministic functions of
 * (StudyOptions, config, workload); repeated calls — across bench binaries,
 * via the disk cache — are free.
 *
 * The engine is safe to drive from multiple threads and parallelises its
 * own sweeps internally (homogeneousAt/heterogeneousAt fan the independent
 * workload runs out over the smtflex::exec thread pool; bestParsecCycles
 * fans out over thread-count candidates). SMTFLEX_JOBS controls the worker
 * count; with SMTFLEX_JOBS=1 everything runs serially, and every metric an
 * engine reports is byte-identical for any job count.
 */
class StudyEngine
{
  public:
    explicit StudyEngine(StudyOptions options = StudyOptions::fromEnv());

    const StudyOptions &options() const { return options_; }
    const PowerModel &powerModel() const { return power_; }

    /** The engine's persistent memoisation cache (shared with the serve
     * layer for stats reporting and shutdown flushing). */
    ResultCache &resultCache() { return cache_; }
    const ResultCache &resultCache() const { return cache_; }

    /** Apply the study's bandwidth option to @p config. */
    ChipConfig configured(const ChipConfig &config) const;

    /** Thread counts simulated by the sweeps (see StudyOptions::fullSweep). */
    std::vector<std::uint32_t> sweepThreadCounts() const;

    /** The simulated count representing thread count @p n. */
    std::uint32_t nearestSweepCount(std::uint32_t n) const;

    // ---- offline analysis (isolated characterisation runs) ----

    /** Isolated IPC of @p bench on a solo core of @p type (cached). */
    double isolatedIpc(const std::string &bench, CoreType type);

    /** Offline table over all SPEC benchmarks and core types. */
    const OfflineProfile &offline();

    // ---- multi-program experiments ----

    /** Run one workload on @p config (offline-scheduled, cached). */
    RunMetrics multiprogram(const ChipConfig &config,
                            const MultiProgramWorkload &workload);

    /** Run one workload naively scheduled (ablation baseline, cached). */
    RunMetrics multiprogramNaive(const ChipConfig &config,
                                 const MultiProgramWorkload &workload);

    /** Harmonic-mean STP over the 12 homogeneous workloads at @p n. */
    RunMetrics homogeneousAt(const ChipConfig &config, std::uint32_t n);

    /** Harmonic-mean STP over the heterogeneous mixes at @p n. */
    RunMetrics heterogeneousAt(const ChipConfig &config, std::uint32_t n);

    /** STP for n copies of one benchmark (Fig. 4 per-benchmark curves). */
    RunMetrics homogeneousBenchmarkAt(const ChipConfig &config,
                                      const std::string &bench,
                                      std::uint32_t n);

    /**
     * Distribution-weighted STP: weighted harmonic mean of the per-thread-
     * count STP under @p dist (Figs. 6-10).
     */
    double distributionStp(const ChipConfig &config,
                           const DiscreteDistribution &dist,
                           bool heterogeneous_workloads);

    /** Distribution-weighted average chip power (gated). */
    double distributionPower(const ChipConfig &config,
                             const DiscreteDistribution &dist,
                             bool heterogeneous_workloads);

    // ---- online scheduling (smtflex::online; DESIGN.md §14) ----

    /** Online profiler/policy knobs derived from the study options (the
     * sample budget is a quarter of the study budget — short quanta by
     * design; the cache keys stay pure functions of StudyOptions). */
    online::OnlineOptions onlineOptions(const std::string &policy) const;

    /** Decide an online placement for one workload (cached). */
    PlacementDecision decidePlacement(const ChipConfig &config,
                                      const MultiProgramWorkload &workload,
                                      const std::string &policy);

    /** Run one workload under the online placement (cached). */
    ScheduleMetrics multiprogramOnline(const ChipConfig &config,
                                       const MultiProgramWorkload &workload,
                                       const std::string &policy);

    /** Online-scheduling counters (the serve layer registers them under
     * `sched.*`). */
    online::SchedStats &schedStats() { return schedStats_; }

    // ---- multi-threaded experiments ----

    /** One PARSEC run (cached). */
    ParsecMetrics parsec(const ChipConfig &config, const std::string &bench,
                         std::uint32_t threads);

    /**
     * Fastest run over the candidate thread counts (the paper reports the
     * maximum speedup across all possible thread counts). Without SMT the
     * only candidate is the core count.
     * @return best cycles (ROI or whole program).
     */
    double bestParsecCycles(const ChipConfig &config,
                            const std::string &bench, bool roi_only);

    /** Candidate thread counts for @p config under its SMT setting. */
    std::vector<std::uint32_t>
    parsecThreadCandidates(const ChipConfig &config) const;

    // ---- cache-key enumeration (the dist federation layer) ----

    /** Cache keys of the 12 x 3 isolated characterisation runs backing
     * the offline table (and the normalisation of every workload run). */
    std::vector<std::string> isolationCacheKeys() const;

    /**
     * Cache keys of the multiprogram records one sweep row at thread
     * count @p n reads, mirroring the sweep dispatch exactly: @p bench
     * non-empty = the single homogeneous workload of that benchmark,
     * @p het = the heterogeneous mixes (one thread degenerates to the
     * homogeneous suite), otherwise the 12 homogeneous workloads.
     */
    std::vector<std::string> sweepRowCacheKeys(const ChipConfig &config,
                                               const std::string &bench,
                                               bool het,
                                               std::uint32_t n) const;

  private:
    std::string keyPrefix(const ChipConfig &config) const;
    std::string isolationKey(const std::string &bench, CoreType type) const;
    RunMetrics runMultiprogramUncached(const ChipConfig &config,
                                       const MultiProgramWorkload &workload);
    /** Simulate @p specs under @p placement on the configured chip and
     * derive RunMetrics (shared by the oracle, naive and online paths). */
    RunMetrics runPlacement(const ChipConfig &chip_config,
                            const std::vector<ThreadSpec> &specs,
                            const Placement &placement);
    static RunMetrics decodeRunMetrics(const std::vector<double> &values);
    static std::vector<double> encodeRunMetrics(const RunMetrics &metrics);
    ParsecMetrics runParsecUncached(const ChipConfig &config,
                                    const std::string &bench,
                                    std::uint32_t threads);

    StudyOptions options_;
    ResultCache cache_;
    PowerModel power_;
    OfflineProfile offline_;
    std::once_flag offlineOnce_;
    online::SchedStats schedStats_;
};

} // namespace smtflex

#endif // SMTFLEX_STUDY_STUDY_ENGINE_H
