#include "design_space.h"

#include "common/log.h"

namespace smtflex {

const std::vector<std::string> &
paperDesignNames()
{
    static const std::vector<std::string> names = {
        "4B",   "8m",    "20s",  "3B2m", "3B5s",
        "2B4m", "2B10s", "1B6m", "1B15s",
    };
    return names;
}

ChipConfig
paperDesign(const std::string &name)
{
    const CoreParams big = CoreParams::big();
    const CoreParams medium = CoreParams::medium();
    const CoreParams small = CoreParams::small();

    if (name == "4B")
        return ChipConfig::homogeneous("4B", big, 4);
    if (name == "8m")
        return ChipConfig::homogeneous("8m", medium, 8);
    if (name == "20s")
        return ChipConfig::homogeneous("20s", small, 20);
    if (name == "3B2m")
        return ChipConfig::heterogeneous("3B2m", 3, medium, 2);
    if (name == "3B5s")
        return ChipConfig::heterogeneous("3B5s", 3, small, 5);
    if (name == "2B4m")
        return ChipConfig::heterogeneous("2B4m", 2, medium, 4);
    if (name == "2B10s")
        return ChipConfig::heterogeneous("2B10s", 2, small, 10);
    if (name == "1B6m")
        return ChipConfig::heterogeneous("1B6m", 1, medium, 6);
    if (name == "1B15s")
        return ChipConfig::heterogeneous("1B15s", 1, small, 15);
    fatal("paperDesign: unknown design '", name, "'");
}

std::vector<ChipConfig>
paperDesigns()
{
    std::vector<ChipConfig> designs;
    for (const auto &name : paperDesignNames())
        designs.push_back(paperDesign(name));
    return designs;
}

const std::vector<std::string> &
alternativeDesignNames()
{
    static const std::vector<std::string> names = {
        "6m_lc", "16s_lc", "6m_hf", "16s_hf",
    };
    return names;
}

ChipConfig
alternativeDesign(const std::string &name)
{
    // Larger caches / higher frequency change the power equivalence to
    // 1 big = 1.5 medium = 4 small (Section 8.1), hence the core counts.
    if (name == "6m_lc") {
        return ChipConfig::homogeneous(
            "6m_lc", CoreParams::medium().withBigCaches(), 6);
    }
    if (name == "16s_lc") {
        return ChipConfig::homogeneous(
            "16s_lc", CoreParams::small().withBigCaches(), 16);
    }
    if (name == "6m_hf") {
        return ChipConfig::homogeneous(
            "6m_hf", CoreParams::medium().withFrequency(3.33), 6);
    }
    if (name == "16s_hf") {
        return ChipConfig::homogeneous(
            "16s_hf", CoreParams::small().withFrequency(3.33), 16);
    }
    fatal("alternativeDesign: unknown design '", name, "'");
}

} // namespace smtflex
