#include "selection.h"

#include <algorithm>

#include "common/log.h"

namespace smtflex {

std::vector<BenchmarkCharacterisation>
characteriseBenchmarks(StudyEngine &engine,
                       const std::vector<std::string> &benchmarks)
{
    std::vector<BenchmarkCharacterisation> table;
    table.reserve(benchmarks.size());
    for (const auto &name : benchmarks) {
        BenchmarkCharacterisation row;
        row.name = name;
        row.ipcBig = engine.isolatedIpc(name, CoreType::kBig);
        row.ipcMedium = engine.isolatedIpc(name, CoreType::kMedium);
        row.ipcSmall = engine.isolatedIpc(name, CoreType::kSmall);
        table.push_back(std::move(row));
    }
    return table;
}

std::vector<std::string>
selectRepresentativeBenchmarks(StudyEngine &engine,
                               const std::vector<std::string> &candidates,
                               std::size_t count)
{
    if (count == 0 || candidates.size() < count)
        fatal("selectRepresentativeBenchmarks: need at least ", count,
              " candidates, got ", candidates.size());

    auto table = characteriseBenchmarks(engine, candidates);
    std::sort(table.begin(), table.end(),
              [](const BenchmarkCharacterisation &a,
                 const BenchmarkCharacterisation &b) {
                  return a.smallOverBig() < b.smallOverBig();
              });

    // Evenly spaced picks over the sorted ranking keep both extremes and
    // provide uniform coverage of the range (the paper's criterion).
    std::vector<std::string> selected;
    selected.reserve(count);
    const std::size_t n = table.size();
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t idx = count == 1
            ? 0
            : (i * (n - 1) + (count - 1) / 2) / (count - 1);
        selected.push_back(table[idx].name);
    }
    // Evenly spaced indices over a sorted ranking are strictly increasing
    // whenever count <= n, so no deduplication is needed.
    return selected;
}

} // namespace smtflex
