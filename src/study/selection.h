/**
 * @file
 * The paper's benchmark-selection methodology (Section 3.2): characterise
 * every benchmark on the three core types in isolation, rank by relative
 * performance, and pick a subset covering the full range — the extremes
 * plus evenly spaced in-betweens.
 */

#ifndef SMTFLEX_STUDY_SELECTION_H
#define SMTFLEX_STUDY_SELECTION_H

#include <cstddef>
#include <string>
#include <vector>

#include "study/study_engine.h"

namespace smtflex {

/** One benchmark's isolated characterisation. */
struct BenchmarkCharacterisation
{
    std::string name;
    double ipcBig = 0.0;
    double ipcMedium = 0.0;
    double ipcSmall = 0.0;

    /** Relative performance of the small core vs the big one — the axis
     * the selection covers. */
    double smallOverBig() const { return ipcSmall / ipcBig; }
    double mediumOverBig() const { return ipcMedium / ipcBig; }
};

/** Characterise @p benchmarks on the three core types (cached isolated
 * runs through the engine). */
std::vector<BenchmarkCharacterisation>
characteriseBenchmarks(StudyEngine &engine,
                       const std::vector<std::string> &benchmarks);

/**
 * Select @p count benchmarks covering the relative-performance range:
 * sort by small/big IPC ratio, keep the extremes, and fill with evenly
 * spaced picks (the paper's coverage criterion).
 */
std::vector<std::string>
selectRepresentativeBenchmarks(StudyEngine &engine,
                               const std::vector<std::string> &candidates,
                               std::size_t count);

} // namespace smtflex

#endif // SMTFLEX_STUDY_SELECTION_H
