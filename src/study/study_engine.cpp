#include "study_engine.h"

#include <sstream>

#include "common/env.h"
#include "common/log.h"
#include "exec/experiment_runner.h"
#include "metrics/metrics.h"
#include "sim/power_summary.h"
#include "trace/spec_profiles.h"
#include "workload/parsec_runner.h"

namespace smtflex {

StudyOptions
StudyOptions::fromEnv()
{
    StudyOptions opts;
    opts.budget = envU64("SMTFLEX_BUDGET", opts.budget);
    opts.warmup = envU64("SMTFLEX_WARMUP", opts.warmup);
    opts.hetMixes = envU32("SMTFLEX_MIXES", opts.hetMixes);
    opts.seed = envU64("SMTFLEX_SEED", opts.seed);
    opts.cachePath = envString("SMTFLEX_CACHE", opts.cachePath);
    opts.fullSweep = envFlag("SMTFLEX_FULLSWEEP", opts.fullSweep);
    if (opts.budget == 0 || opts.hetMixes == 0)
        fatal("StudyOptions: budget and mixes must be positive");
    return opts;
}

StudyEngine::StudyEngine(StudyOptions options)
    : options_(std::move(options)), cache_(options_.cachePath)
{
}

ChipConfig
StudyEngine::configured(const ChipConfig &config) const
{
    return config.withBandwidth(options_.bandwidthGBps);
}

std::vector<std::uint32_t>
StudyEngine::sweepThreadCounts() const
{
    std::vector<std::uint32_t> counts;
    for (std::uint32_t n = 1; n <= options_.maxThreads; ++n) {
        if (options_.fullSweep || n <= 8 || n % 2 == 0)
            counts.push_back(n);
    }
    return counts;
}

std::uint32_t
StudyEngine::nearestSweepCount(std::uint32_t n) const
{
    if (options_.fullSweep || n <= 8 || n % 2 == 0)
        return n;
    // Odd counts above 8 round up to the next simulated even count.
    return std::min<std::uint32_t>(n + 1, options_.maxThreads);
}

std::string
StudyEngine::keyPrefix(const ChipConfig &config) const
{
    std::ostringstream os;
    os << config.name << ";smt" << (config.smtEnabled ? 1 : 0) << ";bw"
       << options_.bandwidthGBps << ";b" << options_.budget << ";w"
       << options_.warmup << ";s" << options_.seed;
    return os.str();
}

std::string
StudyEngine::isolationKey(const std::string &bench, CoreType type) const
{
    std::ostringstream key;
    key << "iso;" << bench << ";" << coreTypeTag(type) << ";b"
        << options_.budget << ";w" << options_.warmup << ";s"
        << options_.seed << ";bw" << options_.bandwidthGBps;
    return key.str();
}

std::vector<std::string>
StudyEngine::isolationCacheKeys() const
{
    std::vector<std::string> keys;
    for (const auto &bench : specBenchmarkNames()) {
        for (const CoreType type :
             {CoreType::kBig, CoreType::kMedium, CoreType::kSmall})
            keys.push_back(isolationKey(bench, type));
    }
    return keys;
}

std::vector<std::string>
StudyEngine::sweepRowCacheKeys(const ChipConfig &config,
                               const std::string &bench, bool het,
                               std::uint32_t n) const
{
    const std::string prefix = "mp;" + keyPrefix(config) + ";";
    std::vector<std::string> keys;
    if (!bench.empty()) {
        keys.push_back(prefix + homogeneousWorkload(bench, n).name);
    } else if (het && n > 1) {
        for (const auto &mix :
             heterogeneousWorkloads(n, options_.hetMixes, options_.seed))
            keys.push_back(prefix + mix.name);
    } else {
        for (const auto &b : specBenchmarkNames())
            keys.push_back(prefix + homogeneousWorkload(b, n).name);
    }
    return keys;
}

double
StudyEngine::isolatedIpc(const std::string &bench, CoreType type)
{
    const std::string key = isolationKey(bench, type);
    if (const auto hit = cache_.lookup(key))
        return hit->at(0);

    CoreParams core;
    switch (type) {
      case CoreType::kBig:
        core = CoreParams::big();
        break;
      case CoreType::kMedium:
        core = CoreParams::medium();
        break;
      case CoreType::kSmall:
        core = CoreParams::small();
        break;
    }
    ChipConfig solo = ChipConfig::homogeneous(
        std::string("iso_") + coreTypeTag(type), core, 1);
    solo = configured(solo);

    ChipSim chip(solo);
    const std::vector<ThreadSpec> specs = {
        {&benchProfileByName(bench), options_.budget, options_.warmup}};
    Placement placement;
    placement.entries = {{0, 0}};
    const SimResult result =
        chip.runMultiProgram(specs, placement, options_.seed);
    if (!result.threads[0].finished)
        fatal("isolatedIpc: ", bench, " never finished on ",
              coreTypeTag(type));
    const double ipc = result.threads[0].ipc();
    cache_.store(key, {ipc});
    return ipc;
}

const OfflineProfile &
StudyEngine::offline()
{
    std::call_once(offlineOnce_, [this] {
        const auto &benches = specBenchmarkNames();
        struct Row
        {
            double big = 0.0, medium = 0.0, small = 0.0;
        };
        // The 12 x 3 isolated characterisation runs are independent; fan
        // them out and fill the table in deterministic order afterwards.
        exec::ExperimentRunner runner;
        const auto rows = runner.map(benches.size(), [&](std::size_t i) {
            Row row;
            row.big = isolatedIpc(benches[i], CoreType::kBig);
            row.medium = isolatedIpc(benches[i], CoreType::kMedium);
            row.small = isolatedIpc(benches[i], CoreType::kSmall);
            return row;
        });
        for (std::size_t i = 0; i < benches.size(); ++i) {
            offline_.set(benches[i], CoreType::kBig, rows[i].big);
            offline_.set(benches[i], CoreType::kMedium, rows[i].medium);
            offline_.set(benches[i], CoreType::kSmall, rows[i].small);
        }
    });
    return offline_;
}

RunMetrics
StudyEngine::runPlacement(const ChipConfig &chip_config,
                          const std::vector<ThreadSpec> &specs,
                          const Placement &placement)
{
    ChipSim chip(chip_config);
    const SimResult result =
        chip.runMultiProgram(specs, placement, options_.seed);

    std::vector<double> isolated;
    isolated.reserve(specs.size());
    for (const auto &spec : specs)
        isolated.push_back(isolatedIpc(spec.profile->name, CoreType::kBig));

    RunMetrics metrics;
    metrics.stp = systemThroughput(result, isolated);
    metrics.antt = avgNormalisedTurnaround(result, isolated);
    metrics.powerGatedW = summarisePower(result, power_, true).avgPowerW;
    metrics.powerUngatedW = summarisePower(result, power_, false).avgPowerW;
    metrics.cycles = static_cast<double>(result.cycles);
    metrics.hitLimit = result.hitCycleLimit;
    return metrics;
}

RunMetrics
StudyEngine::runMultiprogramUncached(const ChipConfig &config,
                                     const MultiProgramWorkload &workload)
{
    const ChipConfig chip_config = configured(config);
    const std::vector<ThreadSpec> specs =
        workload.specs(options_.budget, options_.warmup);
    const Placement placement =
        scheduleOffline(chip_config, specs, offline());
    return runPlacement(chip_config, specs, placement);
}

RunMetrics
StudyEngine::decodeRunMetrics(const std::vector<double> &values)
{
    RunMetrics m;
    m.stp = values.at(0);
    m.antt = values.at(1);
    m.powerGatedW = values.at(2);
    m.powerUngatedW = values.at(3);
    m.cycles = values.at(4);
    m.hitLimit = values.at(5) != 0.0;
    return m;
}

std::vector<double>
StudyEngine::encodeRunMetrics(const RunMetrics &m)
{
    return {m.stp,   m.antt,   m.powerGatedW, m.powerUngatedW,
            m.cycles, m.hitLimit ? 1.0 : 0.0};
}

RunMetrics
StudyEngine::multiprogram(const ChipConfig &config,
                          const MultiProgramWorkload &workload)
{
    const std::string key = "mp;" + keyPrefix(config) + ";" + workload.name;
    if (const auto hit = cache_.lookup(key))
        return decodeRunMetrics(*hit);
    const RunMetrics m = runMultiprogramUncached(config, workload);
    cache_.store(key, encodeRunMetrics(m));
    return m;
}

RunMetrics
StudyEngine::multiprogramNaive(const ChipConfig &config,
                               const MultiProgramWorkload &workload)
{
    const std::string key =
        "mpn;" + keyPrefix(config) + ";" + workload.name;
    if (const auto hit = cache_.lookup(key))
        return decodeRunMetrics(*hit);
    const ChipConfig chip_config = configured(config);
    const std::vector<ThreadSpec> specs =
        workload.specs(options_.budget, options_.warmup);
    const RunMetrics m = runPlacement(
        chip_config, specs, scheduleNaive(chip_config, specs.size()));
    cache_.store(key, encodeRunMetrics(m));
    return m;
}

online::OnlineOptions
StudyEngine::onlineOptions(const std::string &policy) const
{
    online::OnlineOptions opts;
    opts.policy = policy;
    // Short sample quanta by design: a quarter of the study budget (the
    // whole point of the online path is deciding from less evidence than
    // the oracle's full characterisation runs).
    opts.profiler.sampleBudget =
        std::max<InstrCount>(1'000, options_.budget / 4);
    opts.profiler.sampleWarmup = options_.warmup / 3;
    opts.profiler.seed = options_.seed;
    opts.profiler.bandwidthGBps = options_.bandwidthGBps;
    return opts;
}

PlacementDecision
StudyEngine::decidePlacement(const ChipConfig &config,
                             const MultiProgramWorkload &workload,
                             const std::string &policy)
{
    const std::string key =
        "ol;" + policy + ";" + keyPrefix(config) + ";" + workload.name;
    if (const auto hit = cache_.lookup(key)) {
        const std::vector<double> &v = *hit;
        PlacementDecision d;
        d.predictedStp = v.at(0);
        d.predictedAntt = v.at(1);
        d.epochs = static_cast<std::uint32_t>(v.at(2));
        d.migrations = v.at(3);
        d.reclassifications = v.at(4);
        d.quantaSampled = v.at(5);
        d.samplesRun = v.at(6);
        const auto n = static_cast<std::size_t>(v.at(7));
        for (std::size_t t = 0; t < n; ++t) {
            Placement::Entry entry;
            entry.core = static_cast<std::uint32_t>(v.at(8 + 3 * t));
            entry.slot = static_cast<std::uint32_t>(v.at(9 + 3 * t));
            d.placement.entries.push_back(entry);
            d.classes.push_back(static_cast<online::ThreadClass>(
                static_cast<int>(v.at(10 + 3 * t))));
        }
        return d;
    }

    const ChipConfig chip_config = configured(config);
    const std::vector<ThreadSpec> specs =
        workload.specs(options_.budget, options_.warmup);
    const online::OnlineScheduler scheduler(onlineOptions(policy),
                                            &schedStats_);
    const online::OnlineDecision decision =
        scheduler.decide(chip_config, specs);

    PlacementDecision d;
    d.placement = decision.placement;
    d.classes.reserve(decision.profile.threads.size());
    for (const auto &thread : decision.profile.threads)
        d.classes.push_back(thread.klass);
    d.predictedStp = decision.predictedStp;
    d.predictedAntt = decision.predictedAntt;
    d.epochs = decision.epochs;
    d.migrations = static_cast<double>(decision.migrations);
    d.reclassifications = static_cast<double>(decision.reclassifications);
    d.quantaSampled = static_cast<double>(decision.quantaSampled);
    d.samplesRun = static_cast<double>(decision.samplesRun);

    std::vector<double> record = {
        d.predictedStp,
        d.predictedAntt,
        static_cast<double>(d.epochs),
        d.migrations,
        d.reclassifications,
        d.quantaSampled,
        d.samplesRun,
        static_cast<double>(d.placement.entries.size())};
    for (std::size_t t = 0; t < d.placement.entries.size(); ++t) {
        record.push_back(
            static_cast<double>(d.placement.entries[t].core));
        record.push_back(
            static_cast<double>(d.placement.entries[t].slot));
        record.push_back(
            static_cast<double>(static_cast<int>(d.classes[t])));
    }
    cache_.store(key, record);
    return d;
}

ScheduleMetrics
StudyEngine::multiprogramOnline(const ChipConfig &config,
                                const MultiProgramWorkload &workload,
                                const std::string &policy)
{
    const std::string key =
        "olr;" + policy + ";" + keyPrefix(config) + ";" + workload.name;
    if (const auto hit = cache_.lookup(key)) {
        ScheduleMetrics m;
        m.run = decodeRunMetrics(*hit);
        m.predictedStp = hit->at(6);
        m.predictedAntt = hit->at(7);
        return m;
    }
    const PlacementDecision decision =
        decidePlacement(config, workload, policy);
    const ChipConfig chip_config = configured(config);
    const std::vector<ThreadSpec> specs =
        workload.specs(options_.budget, options_.warmup);
    ScheduleMetrics m;
    m.run = runPlacement(chip_config, specs, decision.placement);
    m.predictedStp = decision.predictedStp;
    m.predictedAntt = decision.predictedAntt;
    std::vector<double> record = encodeRunMetrics(m.run);
    record.push_back(m.predictedStp);
    record.push_back(m.predictedAntt);
    cache_.store(key, record);
    return m;
}

namespace {

/** Aggregate per-workload metrics: harmonic mean for STP (a rate metric),
 * arithmetic means for the rest. Quarantined workloads (a persistently
 * failing experiment the recovery layer gave up on) are excluded from the
 * aggregate rather than poisoning it; losing every workload is fatal. */
RunMetrics
aggregate(const exec::RecoveredResults<RunMetrics> &sweep,
          const char *what)
{
    std::vector<double> stp, antt, pg, pu, cycles;
    for (std::size_t i = 0; i < sweep.results.size(); ++i) {
        if (!sweep.ok[i])
            continue;
        const RunMetrics &run = sweep.results[i];
        stp.push_back(run.stp);
        antt.push_back(run.antt);
        pg.push_back(run.powerGatedW);
        pu.push_back(run.powerUngatedW);
        cycles.push_back(run.cycles);
    }
    if (stp.empty())
        fatal(what, ": every workload quarantined (first error: ",
              sweep.quarantined.empty() ? "none"
                                        : sweep.quarantined[0].error,
              ")");
    if (!sweep.quarantined.empty())
        warn(what, ": aggregating without ", sweep.quarantined.size(),
             " quarantined workload(s) of ", sweep.results.size());
    RunMetrics agg;
    agg.stp = harmonicMean(stp);
    agg.antt = arithmeticMean(antt);
    agg.powerGatedW = arithmeticMean(pg);
    agg.powerUngatedW = arithmeticMean(pu);
    agg.cycles = arithmeticMean(cycles);
    return agg;
}

} // namespace

RunMetrics
StudyEngine::homogeneousBenchmarkAt(const ChipConfig &config,
                                    const std::string &bench,
                                    std::uint32_t n)
{
    return multiprogram(config, homogeneousWorkload(bench, n));
}

RunMetrics
StudyEngine::homogeneousAt(const ChipConfig &config, std::uint32_t n)
{
    // Build the offline table before fanning out: its construction is
    // itself a parallel region, and prebuilding it means every parallel
    // workload run below hits the memoised table.
    offline();
    // The self-healing map: transient experiment failures retry with
    // backoff (deterministic results, so recovery is invisible in the
    // output), persistent ones quarantine instead of killing the sweep.
    exec::ExperimentRunner runner;
    return aggregate(
        runner.mapItemsRecovering(
            specBenchmarkNames(),
            [&](const std::string &bench) {
                return homogeneousBenchmarkAt(config, bench, n);
            }),
        "homogeneousAt");
}

RunMetrics
StudyEngine::heterogeneousAt(const ChipConfig &config, std::uint32_t n)
{
    if (n == 1) {
        // A 1-thread "mix" is a single program; balanced sampling over the
        // 12 benchmarks is exactly one run of each.
        return homogeneousAt(config, 1);
    }
    offline();
    exec::ExperimentRunner runner;
    return aggregate(
        runner.mapItemsRecovering(
            heterogeneousWorkloads(n, options_.hetMixes, options_.seed),
            [&](const MultiProgramWorkload &mix) {
                return multiprogram(config, mix);
            }),
        "heterogeneousAt");
}

double
StudyEngine::distributionStp(const ChipConfig &config,
                             const DiscreteDistribution &dist,
                             bool heterogeneous_workloads)
{
    std::vector<double> stp, weights;
    for (std::size_t n = 1; n <= dist.size(); ++n) {
        const std::uint32_t sim_n =
            nearestSweepCount(static_cast<std::uint32_t>(n));
        const auto metrics = heterogeneous_workloads
            ? heterogeneousAt(config, sim_n)
            : homogeneousAt(config, sim_n);
        stp.push_back(metrics.stp);
        weights.push_back(dist.probability(n));
    }
    // STP is a rate: average with the weighted harmonic mean.
    return weightedHarmonicMean(stp, weights);
}

double
StudyEngine::distributionPower(const ChipConfig &config,
                               const DiscreteDistribution &dist,
                               bool heterogeneous_workloads)
{
    std::vector<double> power, weights;
    for (std::size_t n = 1; n <= dist.size(); ++n) {
        const std::uint32_t sim_n =
            nearestSweepCount(static_cast<std::uint32_t>(n));
        const auto metrics = heterogeneous_workloads
            ? heterogeneousAt(config, sim_n)
            : homogeneousAt(config, sim_n);
        power.push_back(metrics.powerGatedW);
        weights.push_back(dist.probability(n));
    }
    return weightedArithmeticMean(power, weights);
}

ParsecMetrics
StudyEngine::runParsecUncached(const ChipConfig &config,
                               const std::string &bench,
                               std::uint32_t threads)
{
    const ChipConfig chip_config = configured(config);
    ParsecRunner runner(chip_config, parsecProfile(bench), threads,
                        options_.seed);
    const ParsecRunResult run = runner.run();

    ParsecMetrics metrics;
    metrics.roiCycles = static_cast<double>(run.roiCycles());
    metrics.totalCycles = static_cast<double>(run.totalCycles);
    metrics.powerGatedW = summarisePower(run.sim, power_, true).avgPowerW;
    metrics.completed = run.completed;
    metrics.roiActiveThreadFractions = run.roiActiveThreadFractions;
    return metrics;
}

ParsecMetrics
StudyEngine::parsec(const ChipConfig &config, const std::string &bench,
                    std::uint32_t threads)
{
    std::ostringstream key;
    key << "ps;" << keyPrefix(config) << ";" << bench << ";t" << threads;
    if (const auto hit = cache_.lookup(key.str())) {
        ParsecMetrics m;
        m.roiCycles = hit->at(0);
        m.totalCycles = hit->at(1);
        m.powerGatedW = hit->at(2);
        m.completed = hit->at(3) != 0.0;
        m.roiActiveThreadFractions.assign(hit->begin() + 4, hit->end());
        return m;
    }
    const ParsecMetrics m = runParsecUncached(config, bench, threads);
    std::vector<double> record = {m.roiCycles, m.totalCycles, m.powerGatedW,
                                  m.completed ? 1.0 : 0.0};
    record.insert(record.end(), m.roiActiveThreadFractions.begin(),
                  m.roiActiveThreadFractions.end());
    cache_.store(key.str(), record);
    return m;
}

std::vector<std::uint32_t>
StudyEngine::parsecThreadCandidates(const ChipConfig &config) const
{
    std::vector<std::uint32_t> candidates;
    if (!config.smtEnabled) {
        // Without SMT: one thread per core (paper Section 5).
        candidates.push_back(config.numCores());
        return candidates;
    }
    const std::uint32_t contexts = config.totalContexts();
    for (std::uint32_t t = 4; t <= options_.maxThreads; t += 4) {
        if (t <= contexts)
            candidates.push_back(t);
    }
    // Also consider exactly one thread per core (the no-SMT sweet spot
    // remains available to an SMT chip).
    if (config.numCores() <= options_.maxThreads)
        candidates.push_back(config.numCores());
    return candidates;
}

double
StudyEngine::bestParsecCycles(const ChipConfig &config,
                              const std::string &bench, bool roi_only)
{
    exec::ExperimentRunner runner;
    const auto all = runner.mapItems(
        parsecThreadCandidates(config), [&](std::uint32_t t) {
            const ParsecMetrics m = parsec(config, bench, t);
            return roi_only ? m.roiCycles : m.totalCycles;
        });
    double best = 0.0;
    for (const double cycles : all) {
        if (cycles <= 0.0)
            continue;
        if (best == 0.0 || cycles < best)
            best = cycles;
    }
    if (best == 0.0)
        fatal("bestParsecCycles: no valid run for ", bench, " on ",
              config.name);
    return best;
}

} // namespace smtflex
