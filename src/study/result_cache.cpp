#include "result_cache.h"

#include <fstream>
#include <functional>
#include <sstream>

#include "common/log.h"

namespace smtflex {

ResultCache::ResultCache(std::string path) : path_(std::move(path))
{
    for (auto &shard : shards_)
        shard = std::make_unique<Shard>();
    if (!path_.empty())
        load();
}

std::string
ResultCache::escapeKey(const std::string &key)
{
    std::string out;
    out.reserve(key.size());
    for (const char c : key) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '|':
            out += "\\p";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
ResultCache::unescapeKey(const std::string &escaped)
{
    std::string out;
    out.reserve(escaped.size());
    for (std::size_t i = 0; i < escaped.size(); ++i) {
        if (escaped[i] != '\\' || i + 1 == escaped.size()) {
            out += escaped[i];
            continue;
        }
        switch (escaped[++i]) {
          case '\\':
            out += '\\';
            break;
          case 'p':
            out += '|';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          default:
            // Legacy keys were written unescaped; keep unknown sequences
            // verbatim so they round-trip.
            out += '\\';
            out += escaped[i];
        }
    }
    return out;
}

std::size_t
ResultCache::shardOf(const std::string &key) const
{
    return std::hash<std::string>{}(key) % kNumShards;
}

std::string
ResultCache::shardPath(std::size_t index) const
{
    std::ostringstream os;
    os << path_ << ".shard-" << (index < 10 ? "0" : "") << index;
    return os.str();
}

void
ResultCache::loadFile(const std::string &file_path)
{
    std::ifstream in(file_path);
    if (!in)
        return; // no segment yet
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t sep = line.find('|');
        if (sep == std::string::npos || sep == 0)
            continue; // tolerate partial/corrupt lines
        std::vector<double> values;
        std::istringstream vs(line.substr(sep + 1));
        double v;
        while (vs >> v)
            values.push_back(v);
        const std::string key = unescapeKey(line.substr(0, sep));
        shards_[shardOf(key)]->entries[key] = std::move(values);
    }
}

void
ResultCache::load()
{
    // Legacy single-file format first, then the shard segments (newer
    // records) so they override.
    loadFile(path_);
    for (std::size_t i = 0; i < kNumShards; ++i)
        loadFile(shardPath(i));
}

std::optional<std::vector<double>>
ResultCache::lookup(const std::string &key) const
{
    const Shard &shard = *shards_[shardOf(key)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end())
        return std::nullopt;
    return it->second;
}

const std::vector<double> *
ResultCache::find(const std::string &key) const
{
    const Shard &shard = *shards_[shardOf(key)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    return it == shard.entries.end() ? nullptr : &it->second;
}

void
ResultCache::store(const std::string &key, const std::vector<double> &values)
{
    if (key.empty())
        fatal("ResultCache: empty key");
    const std::size_t index = shardOf(key);
    Shard &shard = *shards_[index];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries[key] = values;
    if (path_.empty())
        return;
    if (!shard.out.is_open()) {
        shard.out.open(shardPath(index), std::ios::app);
        if (!shard.out) {
            warn("ResultCache: cannot append to ", shardPath(index));
            return;
        }
        shard.out.precision(17);
    }
    shard.out << escapeKey(key) << '|';
    for (std::size_t i = 0; i < values.size(); ++i)
        shard.out << (i ? " " : "") << values[i];
    shard.out << '\n';
    shard.out.flush();
}

void
ResultCache::flush()
{
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        if (shard->out.is_open())
            shard->out.flush();
    }
}

std::size_t
ResultCache::size() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->entries.size();
    }
    return total;
}

} // namespace smtflex
