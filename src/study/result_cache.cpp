#include "result_cache.h"

#include <fstream>
#include <sstream>

#include "common/log.h"

namespace smtflex {

ResultCache::ResultCache(std::string path) : path_(std::move(path))
{
    if (!path_.empty())
        load();
}

void
ResultCache::load()
{
    std::ifstream in(path_);
    if (!in)
        return; // no cache yet
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t sep = line.find('|');
        if (sep == std::string::npos || sep == 0)
            continue; // tolerate partial/corrupt lines
        std::vector<double> values;
        std::istringstream vs(line.substr(sep + 1));
        double v;
        while (vs >> v)
            values.push_back(v);
        entries_[line.substr(0, sep)] = std::move(values);
    }
}

const std::vector<double> *
ResultCache::find(const std::string &key) const
{
    const auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
}

void
ResultCache::store(const std::string &key, const std::vector<double> &values)
{
    if (key.empty() || key.find('|') != std::string::npos ||
        key.find('\n') != std::string::npos)
        fatal("ResultCache: invalid key '", key, "'");
    entries_[key] = values;
    if (path_.empty())
        return;
    std::ofstream out(path_, std::ios::app);
    if (!out) {
        warn("ResultCache: cannot append to ", path_);
        return;
    }
    out << key << '|';
    out.precision(17);
    for (std::size_t i = 0; i < values.size(); ++i)
        out << (i ? " " : "") << values[i];
    out << '\n';
}

} // namespace smtflex
