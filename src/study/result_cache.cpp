#include "result_cache.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>

#include "common/crc32.h"
#include "common/env.h"
#include "common/fault.h"
#include "common/log.h"

namespace smtflex {

namespace {

/** True when @p tail is a record's CRC field: 'c' + 8 hex digits. */
bool
looksLikeCrcField(const std::string &line, std::size_t field_start)
{
    if (line.size() - field_start != 9 || line[field_start] != 'c')
        return false;
    for (std::size_t i = field_start + 1; i < line.size(); ++i) {
        if (!std::isxdigit(static_cast<unsigned char>(line[i])))
            return false;
    }
    return true;
}

/** fsync @p fd, honouring the io.fsync injection seam.
 * @return whether the data is known durable. */
bool
syncFd(int fd, const std::string &what)
{
    if (fault::shouldFire(fault::Site::kIoFsync)) {
        warn("ResultCache: injected fsync failure on ", what);
        return false;
    }
    if (::fsync(fd) != 0) {
        warn("ResultCache: fsync(", what, ") failed: ",
             std::strerror(errno));
        return false;
    }
    return true;
}

/** fsync the directory containing @p file_path so a rename is durable. */
void
syncParentDir(const std::string &file_path)
{
    const std::size_t slash = file_path.rfind('/');
    const std::string dir =
        slash == std::string::npos ? "." : file_path.substr(0, slash);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return; // best effort: some filesystems refuse directory opens
    syncFd(fd, dir);
    ::close(fd);
}

} // namespace

ResultCache::ResultCache(std::string path) : path_(std::move(path))
{
    fsyncEachStore_ = envFlag("SMTFLEX_CACHE_FSYNC", false);
    for (auto &shard : shards_)
        shard = std::make_unique<Shard>();
    if (!path_.empty())
        load();
}

ResultCache::~ResultCache()
{
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        if (shard->fd >= 0) {
            ::close(shard->fd);
            shard->fd = -1;
        }
    }
}

std::string
ResultCache::escapeKey(const std::string &key)
{
    std::string out;
    out.reserve(key.size());
    for (const char c : key) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '|':
            out += "\\p";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
ResultCache::unescapeKey(const std::string &escaped)
{
    std::string out;
    out.reserve(escaped.size());
    for (std::size_t i = 0; i < escaped.size(); ++i) {
        if (escaped[i] != '\\' || i + 1 == escaped.size()) {
            out += escaped[i];
            continue;
        }
        switch (escaped[++i]) {
          case '\\':
            out += '\\';
            break;
          case 'p':
            out += '|';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          default:
            // Legacy keys were written unescaped; keep unknown sequences
            // verbatim so they round-trip.
            out += '\\';
            out += escaped[i];
        }
    }
    return out;
}

std::string
ResultCache::formatRecord(const std::string &key,
                          const std::vector<double> &values)
{
    std::ostringstream os;
    os.precision(17);
    os << escapeKey(key) << '|';
    for (std::size_t i = 0; i < values.size(); ++i)
        os << (i ? " " : "") << values[i];
    std::string record = os.str();
    char tag[11];
    std::snprintf(tag, sizeof(tag), "|c%08x", crc32(record));
    record += tag;
    record += '\n';
    return record;
}

std::size_t
ResultCache::shardOf(const std::string &key) const
{
    return std::hash<std::string>{}(key) % kNumShards;
}

std::string
ResultCache::shardPath(std::size_t index) const
{
    std::ostringstream os;
    os << path_ << ".shard-" << (index < 10 ? "0" : "") << index;
    return os.str();
}

void
ResultCache::loadFile(const std::string &file_path)
{
    if (fault::shouldFire(fault::Site::kIoLoad)) {
        warn("ResultCache: injected load failure on ", file_path,
             "; segment treated as missing");
        return;
    }
    std::ifstream in(file_path);
    if (!in)
        return; // no segment yet
    std::uint64_t skipped = 0;
    bool strict = false;
    bool first = true;
    std::string line;
    while (std::getline(in, line)) {
        if (first) {
            first = false;
            if (line == kFormatHeader) {
                strict = true;
                continue;
            }
        }
        const std::size_t sep = line.find('|');
        if (sep == std::string::npos || sep == 0) {
            // Partial/corrupt line (or an empty key): no usable record.
            ++skipped;
            continue;
        }
        std::size_t values_end = line.size();
        const std::size_t last = line.rfind('|');
        if (last != sep && looksLikeCrcField(line, last + 1)) {
            // CRC-tagged record: the checksum covers everything before
            // the final separator. A mismatch means a torn write or a
            // merged line — skip it; the result will be recomputed.
            const std::uint32_t stored = static_cast<std::uint32_t>(
                std::strtoul(line.c_str() + last + 2, nullptr, 16));
            if (crc32(line.data(), last) != stored) {
                ++skipped;
                continue;
            }
            values_end = last;
        } else if (strict) {
            // A v2 file only ever contains CRC-tagged records, so a line
            // without a valid tag is a truncated record — it must not be
            // mistaken for a CRC-less legacy line with shortened values.
            ++skipped;
            continue;
        }
        std::vector<double> values;
        std::istringstream vs(line.substr(sep + 1, values_end - sep - 1));
        double v;
        while (vs >> v)
            values.push_back(v);
        const std::string key = unescapeKey(line.substr(0, sep));
        shards_[shardOf(key)]->entries[key] = std::move(values);
    }
    if (skipped > 0) {
        corruptSkipped_.fetch_add(skipped, std::memory_order_relaxed);
        warn("ResultCache: skipped ", skipped, " corrupt line",
             skipped == 1 ? "" : "s", " in ", file_path,
             " (results will be recomputed)");
    }
}

void
ResultCache::load()
{
    // Legacy single-file format first, then the shard segments (newer
    // records) so they override.
    loadFile(path_);
    for (std::size_t i = 0; i < kNumShards; ++i)
        loadFile(shardPath(i));
}

std::optional<std::vector<double>>
ResultCache::lookup(const std::string &key) const
{
    const Shard &shard = *shards_[shardOf(key)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end())
        return std::nullopt;
    return it->second;
}

const std::vector<double> *
ResultCache::find(const std::string &key) const
{
    const Shard &shard = *shards_[shardOf(key)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    return it == shard.entries.end() ? nullptr : &it->second;
}

void
ResultCache::appendRecord(Shard &shard, std::size_t index,
                          const std::string &record)
{
    if (shard.fd < 0) {
        shard.fd = ::open(shardPath(index).c_str(),
                          O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
        if (shard.fd < 0) {
            warn("ResultCache: cannot append to ", shardPath(index), ": ",
                 std::strerror(errno));
            return;
        }
        struct stat st;
        if (::fstat(shard.fd, &st) == 0 && st.st_size == 0) {
            // Fresh segment: stamp the strict-format header. If this
            // write tears, the file simply loads as legacy — CRC-tagged
            // records still verify there.
            const std::string header = std::string(kFormatHeader) + '\n';
            [[maybe_unused]] const ssize_t h =
                ::write(shard.fd, header.data(), header.size());
            // Record fsyncs alone don't make a *new* file durable: its
            // directory entry needs an fsync of the parent too, else a
            // power loss can drop the entire segment. (checkpoint()
            // already syncs the parent after its rename.)
            if (fsyncEachStore_)
                syncParentDir(shardPath(index));
        }
    }
    // A write can legitimately land short (signal, disk pressure) or be
    // torn by a crash; the io.write seam injects the short case. Recovery:
    // terminate whatever prefix reached the disk so it is one CRC-failing
    // line, then rewrite the whole record. The cost of a short write is
    // one skipped line at the next load, never a lost or corrupt record.
    for (int attempt = 0; attempt < 3; ++attempt) {
        std::size_t want = record.size();
        bool injected = false;
        if (fault::shouldFire(fault::Site::kIoWrite)) {
            injected = true;
            want = fault::param(fault::Site::kIoWrite, record.size() / 2);
            want = std::min(want, record.size() - 1);
        }
        const ssize_t n = ::write(shard.fd, record.data(), want);
        if (n == static_cast<ssize_t>(record.size())) {
            if (fsyncEachStore_)
                syncFd(shard.fd, shardPath(index));
            return;
        }
        if (n < 0 && errno != EINTR) {
            warn("ResultCache: write to ", shardPath(index), " failed: ",
                 std::strerror(errno));
            return;
        }
        if (n > 0 || injected) {
            warn("ResultCache: short write of ",
                 injected ? "(injected) " : "", shardPath(index),
                 "; terminating torn record and retrying");
            [[maybe_unused]] const ssize_t t = ::write(shard.fd, "\n", 1);
        }
    }
    warn("ResultCache: giving up appending a record to ",
         shardPath(index), "; the entry stays in memory only");
}

void
ResultCache::store(const std::string &key, const std::vector<double> &values)
{
    if (key.empty())
        fatal("ResultCache: empty key");
    const std::size_t index = shardOf(key);
    Shard &shard = *shards_[index];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries[key] = values;
    if (path_.empty())
        return;
    appendRecord(shard, index, formatRecord(key, values));
}

void
ResultCache::flush()
{
    if (path_.empty())
        return;
    for (std::size_t i = 0; i < kNumShards; ++i) {
        Shard &shard = *shards_[i];
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (shard.fd >= 0)
            syncFd(shard.fd, shardPath(i));
    }
}

bool
ResultCache::checkpoint()
{
    if (path_.empty())
        return true;
    bool all_ok = true;
    for (std::size_t i = 0; i < kNumShards; ++i) {
        Shard &shard = *shards_[i];
        std::lock_guard<std::mutex> lock(shard.mutex);
        const std::string segment = shardPath(i);
        const std::string tmp = segment + ".tmp";
        const int fd =
            ::open(tmp.c_str(),
                   O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
        if (fd < 0) {
            warn("ResultCache: checkpoint cannot create ", tmp, ": ",
                 std::strerror(errno));
            all_ok = false;
            continue;
        }
        std::string blob = std::string(kFormatHeader) + '\n';
        for (const auto &[key, values] : shard.entries)
            blob += formatRecord(key, values);
        bool ok = true;
        std::size_t written = 0;
        while (written < blob.size()) {
            const ssize_t n =
                ::write(fd, blob.data() + written, blob.size() - written);
            if (n > 0) {
                written += static_cast<std::size_t>(n);
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            warn("ResultCache: checkpoint write to ", tmp, " failed: ",
                 std::strerror(errno));
            ok = false;
            break;
        }
        // The durable order is write -> fsync -> rename -> fsync(dir);
        // any failure keeps the old segment (still loadable) in place.
        ok = ok && syncFd(fd, tmp);
        ::close(fd);
        if (!ok || ::rename(tmp.c_str(), segment.c_str()) != 0) {
            if (ok)
                warn("ResultCache: checkpoint rename to ", segment,
                     " failed: ", std::strerror(errno));
            ::unlink(tmp.c_str());
            all_ok = false;
            continue;
        }
        syncParentDir(segment);
        // The append descriptor points at the replaced inode; reopen on
        // the next store.
        if (shard.fd >= 0) {
            ::close(shard.fd);
            shard.fd = -1;
        }
    }
    return all_ok;
}

std::size_t
ResultCache::size() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->entries.size();
    }
    return total;
}

} // namespace smtflex
