/**
 * @file
 * The paper's multi-core design space: the nine power-equivalent designs of
 * Figure 2 (power budget = 4 big = 8 medium = 20 small cores plus a shared
 * 8 MB LLC) and the Section 8.1 alternative designs (larger caches / higher
 * frequency for medium and small cores).
 */

#ifndef SMTFLEX_STUDY_DESIGN_SPACE_H
#define SMTFLEX_STUDY_DESIGN_SPACE_H

#include <string>
#include <vector>

#include "sim/chip_config.h"

namespace smtflex {

/** Names of the nine designs in paper order:
 * 4B, 8m, 20s, 3B2m, 3B5s, 2B4m, 2B10s, 1B6m, 1B15s. */
const std::vector<std::string> &paperDesignNames();

/** Build one of the nine designs by name (SMT enabled by default). */
ChipConfig paperDesign(const std::string &name);

/** All nine designs. */
std::vector<ChipConfig> paperDesigns();

/** Names of the Section 8.1 variants: 6m_lc, 16s_lc, 6m_hf, 16s_hf. */
const std::vector<std::string> &alternativeDesignNames();

/** Build a Section 8.1 variant by name. */
ChipConfig alternativeDesign(const std::string &name);

} // namespace smtflex

#endif // SMTFLEX_STUDY_DESIGN_SPACE_H
