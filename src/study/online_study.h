/**
 * @file
 * The online-scheduling figure (DESIGN.md §14, EXPERIMENTS.md): how close
 * do the counter-driven online policies get to the paper's offline-oracle
 * placement? For each (design, mix) the figure runs the same workload
 * under NaiveScheduler, the OfflineScheduler oracle, and every online
 * policy, and reports simulated STP/ANTT side by side. Everything is
 * memoised through the engine's ResultCache, so the figure reproduces
 * from the committed seed cache without simulating.
 */

#ifndef SMTFLEX_STUDY_ONLINE_STUDY_H
#define SMTFLEX_STUDY_ONLINE_STUDY_H

#include <cstdint>
#include <string>
#include <vector>

#include "study/study_engine.h"
#include "workload/multiprogram.h"

namespace smtflex {

/** One (design, mix) row of the figure. */
struct OnlineStudyRow
{
    std::string design;
    std::string workload;
    std::uint32_t threads = 0;
    RunMetrics naive;
    RunMetrics oracle;
    /** One entry per online policy, onlinePolicyNames() order. */
    std::vector<ScheduleMetrics> policies;
};

/** Chip designs the figure evaluates: the homogeneous SMT reference and
 * the two big+small heterogeneous designs where placement matters most. */
const std::vector<std::string> &onlineStudyDesigns();

/**
 * The figure's reference mixes: the first heterogeneous SPEC mixes at 4
 * and 8 threads (balanced-sampling, seed-deterministic), two PARSEC
 * worker-kernel mixes, and one blended SPEC+PARSEC mix.
 */
std::vector<MultiProgramWorkload>
onlineStudyWorkloads(const StudyOptions &options);

/** Compute every row (fanned out over the exec pool, memoised). */
std::vector<OnlineStudyRow> onlineStudy(StudyEngine &engine);

/** Render the figure as text (the `smtflex schedule --figure` view). */
std::string onlineStudyText(StudyEngine &engine);

} // namespace smtflex

#endif // SMTFLEX_STUDY_ONLINE_STUDY_H
