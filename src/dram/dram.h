/**
 * @file
 * Main-memory model: 8 independent banks with a fixed access time, behind a
 * bandwidth-limited off-chip bus (Table 1: 8 banks, 45 ns, 8 GB/s).
 *
 * The bus is the paper's crucial shared bottleneck: at high thread counts,
 * memory-intensive workloads saturate it, flattening the performance
 * differences between multi-core configurations (paper Fig. 4b, Section 8.2).
 */

#ifndef SMTFLEX_DRAM_DRAM_H
#define SMTFLEX_DRAM_DRAM_H

#include <cstdint>
#include <vector>

#include "ckpt/serial.h"
#include "common/types.h"
#include "telemetry/registry.h"

namespace smtflex {

/** DRAM + off-chip bus configuration. */
struct DramConfig
{
    std::uint32_t numBanks = 8;
    /** Bank access time in nanoseconds. */
    double accessTimeNs = 45.0;
    /** Off-chip bus bandwidth in GB/s (per 64-byte line transfer). */
    double busBandwidthGBps = 8.0;
    /** Core/uncore clock frequency in GHz (converts ns to cycles). */
    double clockGHz = 2.66;

    /** Bank access time in cycles. */
    std::uint32_t bankLatencyCycles() const;
    /** Bus occupancy of one line transfer in cycles. */
    std::uint32_t busTransferCycles() const;
};

/** DRAM statistics. */
struct DramStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t totalLatencyCycles = 0; ///< reads only
    std::uint64_t busBusyCycles = 0;

    double avgReadLatency() const
    {
        return reads ? static_cast<double>(totalLatencyCycles) / reads : 0.0;
    }

    /** The telemetry field list — single source of the metric names. */
    template <typename F>
    static void forEachCounter(F &&f)
    {
        f("reads", &DramStats::reads);
        f("writes", &DramStats::writes);
        f("total_latency_cycles", &DramStats::totalLatencyCycles);
        f("bus_busy_cycles", &DramStats::busBusyCycles);
    }
};

/**
 * Timestamp-based DRAM model. read() returns the completion cycle of a
 * demand line fill; write() accounts a writeback's bank/bus occupancy
 * without a completion dependency (posted writes).
 */
class DramModel : public telemetry::StatsProvider<DramStats>
{
  public:
    explicit DramModel(const DramConfig &config);

    /** Demand read of the line containing @p addr, issued at @p now.
     * @return cycle at which the line is available at the LLC. */
    Cycle read(Cycle now, Addr addr);

    /** Posted writeback of the line containing @p addr at @p now. */
    void write(Cycle now, Addr addr);

    const DramConfig &config() const { return config_; }

    /** Register this model's counters under @p prefix (e.g. "dram"). */
    void registerMetrics(telemetry::MetricRegistry &registry,
                         const std::string &prefix) const
    {
        telemetry::attachCounters(registry, prefix, stats_);
    }

    /** Observed bus utilisation over @p elapsed cycles (0..1). */
    double busUtilisation(Cycle elapsed) const;

    /** Serialize/restore the mutable state (bank/bus timestamps, stats). */
    void saveState(ckpt::Writer &w) const;
    void loadState(ckpt::Reader &r);

  private:
    Cycle schedule(Cycle now, Addr addr);

    DramConfig config_;
    std::vector<Cycle> bankFree_;
    Cycle busFree_ = 0;
};

} // namespace smtflex

#endif // SMTFLEX_DRAM_DRAM_H
