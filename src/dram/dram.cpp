#include "dram.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace smtflex {

std::uint32_t
DramConfig::bankLatencyCycles() const
{
    return static_cast<std::uint32_t>(std::ceil(accessTimeNs * clockGHz));
}

std::uint32_t
DramConfig::busTransferCycles() const
{
    // Transfer time of one line: lineSize / bandwidth, in cycles.
    const double ns = static_cast<double>(kLineSize) / busBandwidthGBps;
    return static_cast<std::uint32_t>(std::ceil(ns * clockGHz));
}

DramModel::DramModel(const DramConfig &config) : config_(config)
{
    if (config_.numBanks == 0)
        fatal("DramModel: numBanks must be > 0");
    if (config_.busBandwidthGBps <= 0.0)
        fatal("DramModel: bandwidth must be > 0");
    bankFree_.assign(config_.numBanks, 0);
}

Cycle
DramModel::schedule(Cycle now, Addr addr)
{
    // Bank selection by line address (interleaved).
    const std::uint32_t bank =
        static_cast<std::uint32_t>((addr / kLineSize) % config_.numBanks);

    const Cycle bank_start = std::max(now, bankFree_[bank]);
    const Cycle bank_done = bank_start + config_.bankLatencyCycles();
    bankFree_[bank] = bank_done;

    // The line then occupies the shared off-chip bus.
    const Cycle bus_start = std::max(bank_done, busFree_);
    const Cycle done = bus_start + config_.busTransferCycles();
    busFree_ = done;
    stats_.busBusyCycles += config_.busTransferCycles();
    return done;
}

Cycle
DramModel::read(Cycle now, Addr addr)
{
    const Cycle done = schedule(now, addr);
    ++stats_.reads;
    stats_.totalLatencyCycles += done - now;
    return done;
}

void
DramModel::write(Cycle now, Addr addr)
{
    schedule(now, addr);
    ++stats_.writes;
}

double
DramModel::busUtilisation(Cycle elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    return std::min(1.0, static_cast<double>(stats_.busBusyCycles) /
                             static_cast<double>(elapsed));
}

void
DramModel::saveState(ckpt::Writer &w) const
{
    w.u64(busFree_);
    ckpt::saveCounters(w, stats_);
    w.u32(static_cast<std::uint32_t>(bankFree_.size()));
    for (const Cycle c : bankFree_)
        w.u64(c);
}

void
DramModel::loadState(ckpt::Reader &r)
{
    busFree_ = r.u64();
    ckpt::loadCounters(r, stats_);
    r.count(bankFree_.size(), "dram banks");
    for (Cycle &c : bankFree_)
        c = r.u64();
}

} // namespace smtflex
