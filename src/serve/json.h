/**
 * @file
 * A minimal JSON value type with a strict parser and a deterministic
 * serializer, used by the smtflex::serve wire protocol.
 *
 * The serving protocol exchanges small request/response documents; pulling
 * in an external JSON dependency is not worth it (and the build image bakes
 * in no such library). This implementation supports the full JSON grammar
 * (RFC 8259): objects, arrays, strings with escape sequences including
 * \uXXXX (and surrogate pairs), numbers, booleans and null. Object members
 * are kept in a sorted map, so dump() output is canonical — two
 * semantically equal documents serialize to byte-identical text, which the
 * server exploits for request coalescing keys.
 */

#ifndef SMTFLEX_SERVE_JSON_H
#define SMTFLEX_SERVE_JSON_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace smtflex {
namespace serve {

/**
 * An immutable-ish JSON document node. Building is done through the static
 * factories plus set()/push(); reading through the typed accessors, which
 * fatal() on type mismatches (protocol handlers catch FatalError and turn
 * it into a `bad_request` reply).
 */
class Json
{
  public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    /** A null document. */
    Json() = default;

    static Json boolean(bool value);
    static Json number(double value);
    static Json number(std::uint64_t value);
    static Json string(std::string value);
    static Json array();
    static Json object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::kNull; }
    bool isBool() const { return type_ == Type::kBool; }
    bool isNumber() const { return type_ == Type::kNumber; }
    bool isString() const { return type_ == Type::kString; }
    bool isArray() const { return type_ == Type::kArray; }
    bool isObject() const { return type_ == Type::kObject; }

    /** Typed reads; fatal() when the node has a different type. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /**
     * The number as a non-negative integer; fatal() when the node is not a
     * number, is negative, has a fractional part, or exceeds 2^53 (the
     * largest contiguously representable integer in a double).
     */
    std::uint64_t asU64() const;

    // ---- objects ----

    /** Whether this object has member @p key (false for non-objects). */
    bool has(const std::string &key) const;

    /** Member @p key; fatal() when absent or this is not an object. */
    const Json &at(const std::string &key) const;

    /** Set member @p key (this must be an object). */
    Json &set(const std::string &key, Json value);

    /** Members of an object (sorted by key). */
    const std::map<std::string, Json> &members() const;

    // ---- arrays ----

    /** Append @p value (this must be an array). */
    Json &push(Json value);

    /** Element @p index; fatal() when out of range or not an array. */
    const Json &at(std::size_t index) const;

    /** Elements of an array. */
    const std::vector<Json> &elements() const;

    /** Array/object element count; fatal() for scalar types. */
    std::size_t size() const;

    // ---- text form ----

    /**
     * Compact canonical serialization: no whitespace, object keys in
     * sorted order, integral numbers printed without exponent/fraction.
     */
    std::string dump() const;

    /** Parse @p text (a complete document; trailing junk is an error).
     * fatal() with a position-annotated message on malformed input. */
    static Json parse(const std::string &text);

    /** JSON string escaping of @p raw, without the surrounding quotes. */
    static std::string escape(const std::string &raw);

  private:
    void expect(Type type, const char *what) const;

    Type type_ = Type::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Json> array_;
    std::map<std::string, Json> object_;
};

} // namespace serve
} // namespace smtflex

#endif // SMTFLEX_SERVE_JSON_H
