#include "client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/fault.h"
#include "common/log.h"

namespace smtflex {
namespace serve {

Client::~Client()
{
    close();
}

Client::Client(Client &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)), decoder_(std::move(other.decoder_)),
      retry_(other.retry_), host_(std::move(other.host_)),
      port_(other.port_), reconnects_(other.reconnects_)
{
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        decoder_ = std::move(other.decoder_);
        retry_ = other.retry_;
        host_ = std::move(other.host_);
        port_ = other.port_;
        reconnects_ = other.reconnects_;
    }
    return *this;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Client::connect(const std::string &host, std::uint16_t port)
{
    host_ = host;
    port_ = port;
    reconnect();
}

void
Client::reconnect()
{
    close();
    decoder_ = FrameDecoder(); // drop any half-received frame
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0)
        fatal("client: socket failed: ", std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1)
        fatal("client: invalid address '", host_, "'");

    if (retry_.connectTimeoutMs == 0) {
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            const int err = errno;
            close();
            fatal("client: cannot connect to ", host_, ":", port_, ": ",
                  std::strerror(err));
        }
        return;
    }

    // Deadline-bounded connect: go non-blocking for the handshake, poll
    // for writability, read the socket error, then restore blocking mode
    // for the op path.
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (errno != EINPROGRESS) {
            const int err = errno;
            close();
            fatal("client: cannot connect to ", host_, ":", port_, ": ",
                  std::strerror(err));
        }
        pollfd pfd{fd_, POLLOUT, 0};
        const int n = ::poll(&pfd, 1,
                             static_cast<int>(std::min<std::uint64_t>(
                                 retry_.connectTimeoutMs, INT32_MAX)));
        if (n <= 0) {
            close();
            fatal("client: connect to ", host_, ":", port_,
                  " timed out after ", retry_.connectTimeoutMs, " ms");
        }
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
            close();
            fatal("client: cannot connect to ", host_, ":", port_, ": ",
                  std::strerror(err));
        }
    }
    ::fcntl(fd_, F_SETFL, flags);
}

void
Client::waitReady(short events, const char *what)
{
    if (retry_.opTimeoutMs == 0)
        return; // blocking socket; the op itself waits
    pollfd pfd{fd_, events, 0};
    const int n = ::poll(&pfd, 1,
                         static_cast<int>(std::min<std::uint64_t>(
                             retry_.opTimeoutMs, INT32_MAX)));
    if (n < 0 && errno != EINTR)
        fatal("client: poll failed: ", std::strerror(errno));
    if (n == 0) {
        // The frame (or our request) may be half way through the stream;
        // only a reconnect restores a decodable position.
        close();
        fatal("client: ", what, " timed out after ", retry_.opTimeoutMs,
              " ms");
    }
}

void
Client::sendBytes(const void *data, std::size_t size)
{
    if (fd_ < 0)
        fatal("client: not connected");
    const char *bytes = static_cast<const char *>(data);
    std::size_t sent = 0;
    while (sent < size) {
        if (fault::shouldFire(fault::Site::kNetDisconnect)) {
            close();
            fatal("client: injected disconnect during write");
        }
        if (fault::shouldFire(fault::Site::kNetEagain)) {
            // An EAGAIN storm on a blocking socket degenerates to "try
            // again"; model it as a skipped iteration.
            continue;
        }
        std::size_t chunk = size - sent;
        if (fault::shouldFire(fault::Site::kNetShortWrite))
            chunk = std::min<std::size_t>(
                chunk, fault::param(fault::Site::kNetShortWrite, 1));
        waitReady(POLLOUT, "send");
        // MSG_NOSIGNAL: a peer that tore the connection mid-frame must
        // surface as EPIPE (handled below), not kill the process with
        // SIGPIPE.
        const ssize_t n =
            ::send(fd_, bytes + sent, chunk, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        const int err = errno;
        close();
        fatal("client: write failed: ", std::strerror(err));
    }
}

void
Client::send(const Json &request)
{
    if (fd_ < 0)
        fatal("client: not connected");
    const std::string frame = encodeFrame(request.dump());
    sendBytes(frame.data(), frame.size());
}

Json
Client::receive()
{
    if (fd_ < 0)
        fatal("client: not connected");
    std::string payload;
    while (!decoder_.next(payload)) {
        if (fault::shouldFire(fault::Site::kNetDisconnect)) {
            close();
            fatal("client: injected disconnect during read");
        }
        if (fault::shouldFire(fault::Site::kNetEagain))
            continue;
        char buf[16 * 1024];
        std::size_t want = sizeof(buf);
        if (fault::shouldFire(fault::Site::kNetShortRead))
            want = std::max<std::uint64_t>(
                1, fault::param(fault::Site::kNetShortRead, 1));
        waitReady(POLLIN, "receive");
        const ssize_t n = ::read(fd_, buf, want);
        if (n > 0) {
            decoder_.feed(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) {
            close();
            fatal("client: connection closed by server");
        }
        if (errno == EINTR)
            continue;
        const int err = errno;
        close();
        fatal("client: read failed: ", std::strerror(err));
    }
    return Json::parse(payload);
}

Json
Client::call(const Json &request)
{
    for (unsigned attempt = 0;; ++attempt) {
        try {
            if (!connected())
                reconnect();
            send(request);
            return receive();
        } catch (const FatalError &) {
            // Connection-level failure (disconnect, timeout, refused
            // reconnect). The request never completed — or its reply is
            // unreachable — so resending is safe: serve requests are
            // idempotent and memoised server-side.
            if (attempt >= retry_.maxRetries)
                throw;
            close();
            std::uint64_t delay = retry_.backoffBaseMs;
            for (unsigned i = 0; i < attempt && delay < retry_.backoffCapMs;
                 ++i)
                delay *= 2;
            delay = std::min(delay, retry_.backoffCapMs);
            if (delay > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay));
            ++reconnects_;
        }
    }
}

} // namespace serve
} // namespace smtflex
