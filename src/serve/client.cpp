#include "client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "common/log.h"

namespace smtflex {
namespace serve {

Client::~Client()
{
    close();
}

Client::Client(Client &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)), decoder_(std::move(other.decoder_))
{
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        decoder_ = std::move(other.decoder_);
    }
    return *this;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Client::connect(const std::string &host, std::uint16_t port)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0)
        fatal("client: socket failed: ", std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        fatal("client: invalid address '", host, "'");
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        fatal("client: cannot connect to ", host, ":", port, ": ",
              std::strerror(errno));
}

void
Client::send(const Json &request)
{
    if (fd_ < 0)
        fatal("client: not connected");
    const std::string frame = encodeFrame(request.dump());
    std::size_t sent = 0;
    while (sent < frame.size()) {
        const ssize_t n =
            ::write(fd_, frame.data() + sent, frame.size() - sent);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        fatal("client: write failed: ", std::strerror(errno));
    }
}

Json
Client::receive()
{
    if (fd_ < 0)
        fatal("client: not connected");
    std::string payload;
    while (!decoder_.next(payload)) {
        char buf[16 * 1024];
        const ssize_t n = ::read(fd_, buf, sizeof(buf));
        if (n > 0) {
            decoder_.feed(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0)
            fatal("client: connection closed by server");
        if (errno == EINTR)
            continue;
        fatal("client: read failed: ", std::strerror(errno));
    }
    return Json::parse(payload);
}

Json
Client::call(const Json &request)
{
    send(request);
    return receive();
}

} // namespace serve
} // namespace smtflex
