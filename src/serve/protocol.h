/**
 * @file
 * The smtflex::serve wire protocol.
 *
 * Framing: every message (both directions) is a 4-byte big-endian payload
 * length followed by that many bytes of UTF-8 JSON. Frames above the
 * configured maximum are a protocol error — the server replies with a
 * `frame_too_large` error and closes the connection (the stream position
 * is unrecoverable once a frame is skipped).
 *
 * Requests are JSON objects:
 *
 *   {"op":"ping"}                        liveness probe (optionally with
 *                                        "delay_ms":N — the reply is then
 *                                        produced by a worker after the
 *                                        delay, a load-testing aid)
 *   {"op":"stats"}                       server counters snapshot
 *   {"op":"metrics"}                     full metric-registry dump: a
 *                                        "metrics" object keyed by dotted
 *                                        path plus an "exposition" string
 *                                        of Prometheus-style text
 *   {"op":"run","design":"4B","workload":["mcf","hmmer"],...}
 *   {"op":"sweep","design":"2B4m","het":true,...}
 *   {"op":"isolated","benches":["tonto"]}
 *   {"op":"cache_pull","keys":["mp;4B;...","iso;mcf;..."]}
 *                                        fetch ResultCache records by key;
 *                                        replies {"records":{key:[v,...]},
 *                                        "misses":N} with absent keys
 *                                        simply omitted
 *   {"op":"cache_push","records":{key:[v,...]}}
 *                                        seed ResultCache records; replies
 *                                        {"stored":N,"rejected":N}
 *                                        (structurally empty records — an
 *                                        empty key or value list — are
 *                                        rejected, not fatal)
 *   {"op":"sweep_chunk","design":"4B","rows":[1,2,12],...}
 *                                        compute the named sweep rows and
 *                                        reply with the backing
 *                                        ResultCache records instead of
 *                                        rendered text — the unit of work
 *                                        the dist coordinator shards
 *   {"op":"schedule","design":"3B5s","benchmarks":["mcf","hmmer"],
 *    "policy":"pairing"}                 online thread-to-core placement
 *                                        for the mix (DESIGN.md §14):
 *                                        sample, classify, place; replies
 *                                        with the placement table and
 *                                        predicted STP/ANTT as text
 *
 * Common optional members: "id" (u64, echoed verbatim in the reply so
 * clients may pipeline), "deadline_ms" (u64; the request is answered with
 * a `deadline` error if a worker cannot start it in time). Integer fields
 * accept JSON numbers or decimal strings; both are validated through
 * common/env.h's strict parsers, and both are capped at 2^53 (the largest
 * integer an exact JSON reply can echo back).
 *
 * Responses: {"id":N,"ok":true,...} or {"id":N,"ok":false,"error":CODE,
 * "message":TEXT} with CODE in {bad_request, overloaded, deadline,
 * shutting_down, frame_too_large, response_too_large, failed, internal}.
 * A response body that would exceed the frame cap is replaced by a
 * `response_too_large` error rather than poisoning the client's decoder.
 */

#ifndef SMTFLEX_SERVE_PROTOCOL_H
#define SMTFLEX_SERVE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "serve/commands.h"
#include "serve/json.h"

namespace smtflex {
namespace serve {

/** Default cap on a frame's payload size (requests and responses). */
constexpr std::size_t kDefaultMaxFrame = 1u << 20;

/** Wrap @p payload in a length-prefixed frame. */
std::string encodeFrame(const std::string &payload);

/**
 * Incremental frame decoder: feed() bytes as they arrive (in any
 * fragmentation), then next() extracts complete payloads. Once a frame
 * exceeding the maximum is seen the decoder is poisoned: next() fatal()s
 * and the connection must be dropped.
 */
class FrameDecoder
{
  public:
    explicit FrameDecoder(std::size_t max_frame = kDefaultMaxFrame)
        : maxFrame_(max_frame)
    {
    }

    /** Append @p size raw bytes from the stream. */
    void feed(const char *data, std::size_t size);

    /**
     * Extract the next complete payload into @p out.
     * @return whether a payload was extracted. fatal()s on an oversized
     * frame header.
     */
    bool next(std::string &out);

    /** Bytes buffered but not yet returned. */
    std::size_t buffered() const { return buffer_.size() - consumed_; }

  private:
    std::size_t maxFrame_;
    std::string buffer_;
    std::size_t consumed_ = 0; ///< prefix of buffer_ already returned
};

/** Request verbs of the protocol. */
enum class Op
{
    kPing,
    kStats,
    kMetrics,
    kRun,
    kSweep,
    kIsolated,
    kCachePull,
    kCachePush,
    kSweepChunk,
    kSchedule,
};

/** Printable verb name (as used on the wire). */
const char *opName(Op op);

/** Parameters of a `cache_pull` (federated ResultCache read). */
struct CachePullRequest
{
    std::vector<std::string> keys;
};

/** Parameters of a `cache_push` (federated ResultCache seed). Records
 * keep their wire order (canonical JSON: sorted by key). */
struct CachePushRequest
{
    std::vector<std::pair<std::string, std::vector<double>>> records;
};

/** Parameters of a `sweep_chunk`: a slice of a sweep's thread-count grid
 * whose result is the backing cache records, not rendered text. */
struct SweepChunkRequest
{
    SweepRequest sweep;
    std::vector<std::uint32_t> rows;
};

/** A parsed, validated request. */
struct Request
{
    Op op = Op::kPing;
    std::uint64_t id = 0;
    bool hasId = false;
    std::uint64_t deadlineMs = 0; ///< 0 = no deadline
    std::uint64_t delayMs = 0;    ///< ping only: artificial service time
    RunRequest run;
    SweepRequest sweep;
    IsolatedRequest isolated;
    CachePullRequest cachePull;
    CachePushRequest cachePush;
    SweepChunkRequest chunk;
    ScheduleRequest schedule;

    /**
     * Canonical identity of the simulation this request asks for, used
     * for coalescing identical in-flight requests and memoising
     * responses. Empty for ping/stats/metrics — and for the cache_pull/
     * cache_push federation ops, which read or write mutable state and
     * must never be coalesced or cached. Excludes id/deadline: two
     * requests differing only in those fields share one simulation.
     */
    std::string canonicalKey() const;
};

/**
 * Parse and validate a request document. fatal() (with a client-facing
 * message) on unknown ops, missing/mistyped members, unknown design or
 * benchmark names, and malformed integer fields.
 */
Request parseRequest(const Json &doc);

/** Best-effort id extraction from a possibly invalid request document,
 * so error replies can still be correlated. Returns 0 when absent. */
std::uint64_t extractId(const Json &doc);

/** Build the common success envelope: {"id":id,"ok":true,"op":op}. */
Json makeResponse(Op op);

/** Build an error reply body: {"ok":false,"error":code,"message":msg}. */
Json makeError(const std::string &code, const std::string &message);

} // namespace serve
} // namespace smtflex

#endif // SMTFLEX_SERVE_PROTOCOL_H
