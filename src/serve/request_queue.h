/**
 * @file
 * A bounded MPMC queue with explicit admission failure — the server's
 * backpressure point. tryPush() never blocks: when the queue is full the
 * caller immediately answers the client with an `overloaded` error
 * instead of letting requests pile up unboundedly (429 semantics).
 *
 * popBatch() hands the dispatcher as many requests as are ready (up to a
 * cap) in one wakeup, which is what lets it batch work onto the
 * smtflex::exec thread pool. close() initiates drain: pushes fail, pops
 * keep succeeding until the queue is empty, then return 0.
 */

#ifndef SMTFLEX_SERVE_REQUEST_QUEUE_H
#define SMTFLEX_SERVE_REQUEST_QUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace smtflex {
namespace serve {

template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /** Admit @p item. @return false (without blocking) when the queue is
     * at capacity or closed. */
    bool tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(item));
        }
        readyCv_.notify_one();
        return true;
    }

    /**
     * Move up to @p max ready items into @p out (cleared first), blocking
     * while the queue is empty and open.
     * @return the number of items delivered; 0 means closed-and-drained.
     */
    std::size_t popBatch(std::vector<T> &out, std::size_t max)
    {
        out.clear();
        std::unique_lock<std::mutex> lock(mutex_);
        readyCv_.wait(lock, [&] { return closed_ || !items_.empty(); });
        const std::size_t take = std::min(max, items_.size());
        for (std::size_t i = 0; i < take; ++i) {
            out.push_back(std::move(items_.front()));
            items_.pop_front();
        }
        return take;
    }

    /** Pop one item; @return false when closed-and-drained. */
    bool pop(T &out)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        readyCv_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        return true;
    }

    /** Refuse new pushes; wake poppers once the backlog drains. */
    void close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        readyCv_.notify_all();
    }

    bool closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    std::size_t size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable readyCv_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace serve
} // namespace smtflex

#endif // SMTFLEX_SERVE_REQUEST_QUEUE_H
