/**
 * @file
 * In-memory memoisation of rendered responses, keyed by a request's
 * canonical form (Request::canonicalKey). Mirrors the study-layer
 * ResultCache's sharding idiom — per-shard mutexes so concurrent pool
 * workers store without contending — but holds bounded, process-local
 * state: response text is cheap to recompute from the persistent
 * ResultCache underneath, so shards evict FIFO past a size cap rather
 * than spilling to disk.
 */

#ifndef SMTFLEX_SERVE_RESPONSE_CACHE_H
#define SMTFLEX_SERVE_RESPONSE_CACHE_H

#include <array>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace smtflex {
namespace serve {

class ResponseCache
{
  public:
    static constexpr std::size_t kNumShards = 8;

    /** @p capacity bounds the total entry count (split across shards). */
    explicit ResponseCache(std::size_t capacity = 4096);

    /** The memoised response body for @p key, or nullopt. */
    std::optional<std::string> lookup(const std::string &key) const;

    /** Memoise @p body under @p key, evicting the shard's oldest entries
     * past its capacity share. Overwrites an existing entry. */
    void store(const std::string &key, std::string body);

    std::size_t size() const;
    std::size_t capacity() const { return perShard_ * kNumShards; }

  private:
    struct Shard
    {
        mutable std::mutex mutex;
        std::unordered_map<std::string, std::string> entries;
        std::deque<std::string> order; ///< insertion order, for eviction
    };

    std::size_t shardOf(const std::string &key) const;

    std::size_t perShard_;
    std::array<Shard, kNumShards> shards_;
};

} // namespace serve
} // namespace smtflex

#endif // SMTFLEX_SERVE_RESPONSE_CACHE_H
