/**
 * @file
 * smtflex::serve — simulation-as-a-service.
 *
 * A single epoll I/O thread owns the listener, every connection's state
 * machine (incremental frame decoding on reads, buffered flushing on
 * writes) and request admission. Admitted work flows through a bounded
 * BoundedQueue to one dispatcher thread, which drains it in batches onto
 * the smtflex::exec work-stealing pool via ExperimentRunner and posts
 * rendered responses back to the I/O thread over a completion queue and
 * a wake pipe.
 *
 * Admission policy, in order:
 *   1. ping (undelayed), stats and metrics are answered inline on the
 *      I/O thread;
 *   2. a memoised response (ResponseCache, canonical request key) is
 *      answered inline — a cache hit;
 *   3. a request whose key is already in flight attaches itself as a
 *      waiter on that computation — coalescing; it consumes no queue slot
 *      and every waiter gets the one result;
 *   4. otherwise the request must win a slot in the bounded queue; when
 *      the queue is full the client immediately receives an `overloaded`
 *      error (429 semantics) — requests are never silently dropped and
 *      never pile up unboundedly.
 *
 * Deadlines: a request carrying deadline_ms that is still queued when the
 * deadline passes is answered with a `deadline` error instead of running.
 *
 * Shutdown (SIGINT/SIGTERM via installSignalHandlers, or requestStop()):
 * the listener closes, new requests on live connections get
 * `shutting_down`, queued and running work drains to completion, every
 * response is flushed, the ResultCache is flushed, and run() returns.
 * Connections that will not accept their responses (a client that stopped
 * reading) are force-closed after drainTimeoutMs — or immediately on a
 * second stop signal — so drain cannot hang on a stalled peer.
 */

#ifndef SMTFLEX_SERVE_SERVER_H
#define SMTFLEX_SERVE_SERVER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/protocol.h"
#include "serve/request_queue.h"
#include "serve/response_cache.h"
#include "study/study_engine.h"
#include "telemetry/registry.h"

namespace smtflex {
namespace serve {

struct ServerOptions
{
    /** Listen address; loopback by default (the loadgen and e2e tests
     * talk over loopback). */
    std::string host = "127.0.0.1";
    /** TCP port; 0 picks an ephemeral port (see Server::port()). */
    std::uint16_t port = 7333;
    /** Bound of the admission queue (backpressure point). 0 = 2x the
     * pool's concurrency. */
    std::size_t queueCapacity = 0;
    /** Largest batch handed to the pool per dispatcher wakeup. 0 = the
     * pool's concurrency. */
    std::size_t batchMax = 0;
    /** Frame payload cap for requests and responses. */
    std::size_t maxFrame = kDefaultMaxFrame;
    /** Memoised-response entries kept in memory. */
    std::size_t responseCacheCapacity = 4096;
    /** During graceful drain, connections whose responses cannot be
     * flushed within this window (a client that stopped reading) are
     * force-closed so shutdown always completes. 0 = wait forever. */
    std::uint64_t drainTimeoutMs = 5'000;
    /** Study options (budget/warmup/seed defaults, ResultCache path). */
    StudyOptions study = StudyOptions();
    /**
     * When set, the run/sweep/isolated simulation ops are delegated to
     * this hook instead of the local StudyEngine — the seam the dist
     * coordinator plugs into to stay wire-compatible while sharding the
     * work across backends. The hook runs on pool worker threads (like
     * any simulation job), returns the full response body, and may throw
     * FatalError for a `failed` reply. All other ops (ping, stats,
     * metrics, cache_pull/cache_push, sweep_chunk) keep their local
     * paths.
     */
    std::function<Json(const Request &)> simExecutor;
};

/** Monotonically increasing counters, readable while serving. */
struct ServerStats
{
    std::atomic<std::uint64_t> connectionsAccepted{0};
    std::atomic<std::uint64_t> requestsReceived{0};
    std::atomic<std::uint64_t> responsesSent{0};
    std::atomic<std::uint64_t> cacheHits{0};
    std::atomic<std::uint64_t> coalesced{0};
    std::atomic<std::uint64_t> overloaded{0};
    std::atomic<std::uint64_t> deadlineExpired{0};
    std::atomic<std::uint64_t> badRequests{0};
    std::atomic<std::uint64_t> shutdownRejected{0};
    std::atomic<std::uint64_t> executed{0};

    /** The telemetry field list. The names are the `stats` op's JSON keys
     * (wire compatibility: the stats body is a walk over these). */
    template <typename F>
    static void forEachCounter(F &&f)
    {
        f("connections", &ServerStats::connectionsAccepted);
        f("requests", &ServerStats::requestsReceived);
        f("responses", &ServerStats::responsesSent);
        f("cache_hits", &ServerStats::cacheHits);
        f("coalesced", &ServerStats::coalesced);
        f("overloaded", &ServerStats::overloaded);
        f("deadline_expired", &ServerStats::deadlineExpired);
        f("bad_requests", &ServerStats::badRequests);
        f("shutdown_rejected", &ServerStats::shutdownRejected);
        f("executed", &ServerStats::executed);
    }
};

class Server
{
  public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Create the listening socket and resolve an ephemeral port. Called
     * implicitly by run(); call it directly when another thread needs
     * port() before the loop starts. fatal() when the address is busy.
     */
    void bind();

    /** The bound port (after bind()). */
    std::uint16_t port() const { return boundPort_; }

    /** Serve until requestStop(); blocks the calling thread. */
    void run();

    /**
     * Initiate graceful shutdown. Async-signal-safe (one write() on a
     * pipe) and callable from any thread; run() returns once in-flight
     * work has drained and responses are flushed.
     */
    void requestStop();

    /** Route SIGINT/SIGTERM to requestStop() of @p server (one server
     * per process; pass nullptr to detach). */
    static void installSignalHandlers(Server *server);

    const ServerStats &stats() const { return stats_; }

    /** The server's experiment driver (the dist coordinator renders its
     * federated sweeps through it). */
    StudyEngine &engine() { return engine_; }

    /**
     * The serve.* metric registry. Additional subsystems (dist.*) may
     * register before run() starts; walks happen on the I/O thread, so
     * late registrations would race. Counter cells and gauges backed by
     * atomics are safe to bump from any thread.
     */
    telemetry::MetricRegistry &registry() { return registry_; }

  private:
    struct Connection
    {
        int fd = -1;
        std::uint64_t id = 0;
        FrameDecoder decoder;
        std::string outBuffer;
        std::size_t outOffset = 0;
        bool wantWrite = false;
        bool closeAfterFlush = false;
    };

    /** One admitted unit of work. */
    struct Job
    {
        Request request;
        std::string key; ///< canonical key; synthetic & unique for pings
        std::chrono::steady_clock::time_point deadline;
        bool hasDeadline = false;
    };

    /** A finished computation, ready to fan out to waiters. */
    struct Completion
    {
        std::string key;
        std::string body; ///< response JSON without the per-request id
        bool cacheable = false;
    };

    /** A (connection, request-id) pair awaiting a shared computation. */
    struct Waiter
    {
        std::uint64_t connectionId = 0;
        std::uint64_t requestId = 0;
        bool hasRequestId = false;
    };

    // ---- I/O thread ----
    void eventLoop();
    void acceptConnections();
    void handleReadable(Connection &conn);
    void handleWritable(Connection &conn);
    void processPayload(Connection &conn, const std::string &payload);
    void admit(Connection &conn, Request request);
    void sendBody(Connection &conn, const Json &body, std::uint64_t id);
    /** Frame @p payload and flush. Bodies above maxFrame are replaced by
     * a `response_too_large` error carrying @p id (the per-request id,
     * for correlation), keeping the client's decoder parseable. */
    void sendRaw(Connection &conn, std::string payload,
                 std::uint64_t id = 0);
    void closeConnection(std::uint64_t connection_id);
    void forceCloseStalled();
    void drainCompletions();
    void updateEpoll(Connection &conn);
    bool drained() const;

    // ---- dispatcher thread ----
    void dispatcherLoop();
    Completion executeJob(const Job &job);
    void postCompletion(Completion completion);

    /** Register every serve.* metric (ctor helper): the ServerStats
     * atomics as counters, the queue/cache/drain figures as gauges. */
    void registerMetrics();

    Json statsBody() const;
    Json metricsBody() const;
    Json cachePullBody(const CachePullRequest &req);
    Json cachePushBody(const CachePushRequest &req);

    ServerOptions options_;
    StudyEngine engine_;
    ResponseCache responses_;
    ServerStats stats_;
    /** The serve.* metric spine: the stats/metrics ops are walks over it.
     * Counter cells are atomics (bumped from both threads); the gauge
     * lambdas touch I/O-thread-owned state, so walks run on the I/O
     * thread only — exactly where statsBody always ran. */
    telemetry::MetricRegistry registry_;

    int listenFd_ = -1;
    int epollFd_ = -1;
    int stopPipe_[2] = {-1, -1};
    int wakePipe_[2] = {-1, -1};
    std::uint16_t boundPort_ = 0;
    bool draining_ = false;
    std::chrono::steady_clock::time_point drainDeadline_;

    /** Connection ids double as epoll user data; 0..2 tag the listener
     * and the stop/wake pipes, so connections start at 3. */
    std::uint64_t nextConnectionId_ = 3;
    std::uint64_t pingSequence_ = 0;
    std::unordered_map<std::uint64_t, std::unique_ptr<Connection>>
        connections_;
    /** canonical key -> waiters of the in-flight computation (I/O thread
     * only). */
    std::unordered_map<std::string, std::vector<Waiter>> inFlight_;

    std::unique_ptr<BoundedQueue<Job>> queue_;
    std::size_t batchMax_ = 1;
    std::thread dispatcher_;
    std::atomic<std::size_t> executing_{0};

    mutable std::mutex completionsMutex_;
    std::deque<Completion> completions_;
};

} // namespace serve
} // namespace smtflex

#endif // SMTFLEX_SERVE_SERVER_H
