#include "protocol.h"

#include <cmath>
#include <cstring>

#include "common/env.h"
#include "common/log.h"

namespace smtflex {
namespace serve {

std::string
encodeFrame(const std::string &payload)
{
    const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
    std::string frame;
    frame.reserve(4 + payload.size());
    frame += static_cast<char>((n >> 24) & 0xff);
    frame += static_cast<char>((n >> 16) & 0xff);
    frame += static_cast<char>((n >> 8) & 0xff);
    frame += static_cast<char>(n & 0xff);
    frame += payload;
    return frame;
}

void
FrameDecoder::feed(const char *data, std::size_t size)
{
    // Drop the already-consumed prefix before growing the buffer so a
    // long-lived connection doesn't accumulate every frame it ever sent.
    if (consumed_ > 0 && consumed_ == buffer_.size()) {
        buffer_.clear();
        consumed_ = 0;
    } else if (consumed_ > 4096) {
        buffer_.erase(0, consumed_);
        consumed_ = 0;
    }
    buffer_.append(data, size);
}

bool
FrameDecoder::next(std::string &out)
{
    if (buffer_.size() - consumed_ < 4)
        return false;
    const unsigned char *p =
        reinterpret_cast<const unsigned char *>(buffer_.data()) + consumed_;
    const std::size_t length = (static_cast<std::size_t>(p[0]) << 24) |
        (static_cast<std::size_t>(p[1]) << 16) |
        (static_cast<std::size_t>(p[2]) << 8) | static_cast<std::size_t>(p[3]);
    if (length > maxFrame_)
        fatal("serve: frame of ", length, " bytes exceeds the ", maxFrame_,
              "-byte limit");
    if (buffer_.size() - consumed_ < 4 + length)
        return false;
    out.assign(buffer_, consumed_ + 4, length);
    consumed_ += 4 + length;
    return true;
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::kPing:
        return "ping";
      case Op::kStats:
        return "stats";
      case Op::kMetrics:
        return "metrics";
      case Op::kRun:
        return "run";
      case Op::kSweep:
        return "sweep";
      case Op::kIsolated:
        return "isolated";
      case Op::kCachePull:
        return "cache_pull";
      case Op::kCachePush:
        return "cache_push";
      case Op::kSweepChunk:
        return "sweep_chunk";
      case Op::kSchedule:
        return "schedule";
    }
    return "?";
}

namespace {

/** An integer protocol field: a JSON number (validated by asU64) or a
 * decimal string routed through the strict common/env.h parser. */
std::uint64_t
fieldU64(const Json &doc, const std::string &key, std::uint64_t fallback)
{
    if (!doc.has(key))
        return fallback;
    const Json &node = doc.at(key);
    if (node.isString()) {
        const std::uint64_t value =
            parseU64(node.asString(), "request field '" + key + "'");
        // Mirror asU64's 2^53 cap: replies render numbers through a
        // double, so anything larger could not be echoed back exactly.
        if (value > (std::uint64_t{1} << 53))
            fatal("request field '", key, "' is ", value,
                  ", above 2^53 (the largest integer an exact JSON reply "
                  "can carry)");
        return value;
    }
    return node.asU64();
}

double
fieldDouble(const Json &doc, const std::string &key, double fallback)
{
    if (!doc.has(key))
        return fallback;
    const Json &node = doc.at(key);
    if (node.isString())
        return parseDouble(node.asString(), "request field '" + key + "'");
    return node.asNumber();
}

bool
fieldBool(const Json &doc, const std::string &key, bool fallback)
{
    return doc.has(key) ? doc.at(key).asBool() : fallback;
}

std::string
fieldString(const Json &doc, const std::string &key,
            const std::string &fallback)
{
    return doc.has(key) ? doc.at(key).asString() : fallback;
}

std::vector<std::string>
fieldStringList(const Json &doc, const std::string &key)
{
    std::vector<std::string> out;
    if (!doc.has(key))
        return out;
    for (const Json &element : doc.at(key).elements())
        out.push_back(element.asString());
    return out;
}

} // namespace

std::uint64_t
extractId(const Json &doc)
{
    if (!doc.isObject() || !doc.has("id"))
        return 0;
    const Json &id = doc.at("id");
    if (!id.isNumber())
        return 0;
    // Replicates asU64's checks inline instead of calling it: this runs
    // inside the bad_request error path, where a fatal() on a negative,
    // fractional or oversized id would tear down the whole server.
    const double value = id.asNumber();
    if (value < 0.0 || value > 9007199254740992.0 /* 2^53 */ ||
        value != std::floor(value))
        return 0;
    return static_cast<std::uint64_t>(value);
}

Request
parseRequest(const Json &doc)
{
    if (!doc.isObject())
        fatal("request must be a JSON object");
    Request req;
    req.hasId = doc.has("id");
    req.id = fieldU64(doc, "id", 0);
    req.deadlineMs = fieldU64(doc, "deadline_ms", 0);

    const std::string op = fieldString(doc, "op", "");
    if (op == "ping") {
        req.op = Op::kPing;
        req.delayMs = fieldU64(doc, "delay_ms", 0);
    } else if (op == "stats") {
        req.op = Op::kStats;
    } else if (op == "metrics") {
        req.op = Op::kMetrics;
    } else if (op == "run") {
        req.op = Op::kRun;
        req.run.design = fieldString(doc, "design", req.run.design);
        req.run.workload = fieldStringList(doc, "workload");
        req.run.budget = fieldU64(doc, "budget", req.run.budget);
        req.run.warmup = fieldU64(doc, "warmup", req.run.warmup);
        req.run.seed = fieldU64(doc, "seed", req.run.seed);
        req.run.noSmt = fieldBool(doc, "no_smt", false);
        req.run.prefetch = fieldBool(doc, "prefetch", false);
        req.run.naiveSched = fieldBool(doc, "naive_sched", false);
        req.run.hasBw = doc.has("bw");
        req.run.bw = fieldDouble(doc, "bw", req.run.bw);
        req.run.report = fieldString(doc, "report", "");
        validateRun(req.run);
    } else if (op == "sweep") {
        req.op = Op::kSweep;
        req.sweep.design = fieldString(doc, "design", req.sweep.design);
        req.sweep.bench = fieldString(doc, "bench", "");
        req.sweep.het = fieldBool(doc, "het", false);
        req.sweep.noSmt = fieldBool(doc, "no_smt", false);
        req.sweep.hasBw = doc.has("bw");
        req.sweep.bw = fieldDouble(doc, "bw", req.sweep.bw);
        validateSweep(req.sweep);
    } else if (op == "isolated") {
        req.op = Op::kIsolated;
        req.isolated.benches = fieldStringList(doc, "benches");
        validateIsolated(req.isolated);
    } else if (op == "cache_pull") {
        req.op = Op::kCachePull;
        if (!doc.has("keys"))
            fatal("cache_pull: 'keys' (list of cache keys) required");
        req.cachePull.keys = fieldStringList(doc, "keys");
        if (req.cachePull.keys.empty())
            fatal("cache_pull: 'keys' must not be empty");
    } else if (op == "cache_push") {
        req.op = Op::kCachePush;
        if (!doc.has("records"))
            fatal("cache_push: 'records' (key -> value-list object) "
                  "required");
        const Json &records = doc.at("records");
        if (!records.isObject())
            fatal("cache_push: 'records' must be an object");
        for (const auto &entry : records.members()) {
            std::vector<double> values;
            for (const Json &value : entry.second.elements())
                values.push_back(value.asNumber());
            req.cachePush.records.emplace_back(entry.first,
                                               std::move(values));
        }
    } else if (op == "sweep_chunk") {
        req.op = Op::kSweepChunk;
        req.chunk.sweep.design =
            fieldString(doc, "design", req.chunk.sweep.design);
        req.chunk.sweep.bench = fieldString(doc, "bench", "");
        req.chunk.sweep.het = fieldBool(doc, "het", false);
        req.chunk.sweep.noSmt = fieldBool(doc, "no_smt", false);
        req.chunk.sweep.hasBw = doc.has("bw");
        req.chunk.sweep.bw = fieldDouble(doc, "bw", req.chunk.sweep.bw);
        validateSweep(req.chunk.sweep);
        if (!doc.has("rows"))
            fatal("sweep_chunk: 'rows' (list of thread counts) required");
        for (const Json &row : doc.at("rows").elements()) {
            const std::uint64_t n = row.asU64();
            if (n == 0)
                fatal("sweep_chunk: row thread counts must be positive");
            req.chunk.rows.push_back(static_cast<std::uint32_t>(n));
        }
        if (req.chunk.rows.empty())
            fatal("sweep_chunk: 'rows' must not be empty");
    } else if (op == "schedule") {
        req.op = Op::kSchedule;
        req.schedule.design =
            fieldString(doc, "design", req.schedule.design);
        req.schedule.benchmarks = fieldStringList(doc, "benchmarks");
        req.schedule.policy =
            fieldString(doc, "policy", req.schedule.policy);
        req.schedule.noSmt = fieldBool(doc, "no_smt", false);
        req.schedule.hasBw = doc.has("bw");
        req.schedule.bw = fieldDouble(doc, "bw", req.schedule.bw);
        validateSchedule(req.schedule);
    } else if (op.empty()) {
        fatal("request is missing the 'op' member");
    } else {
        fatal("unknown op '", op,
              "' (expected ping, stats, metrics, run, sweep, isolated, "
              "cache_pull, cache_push, sweep_chunk or schedule)");
    }
    return req;
}

std::string
Request::canonicalKey() const
{
    // Built from a canonical JSON rendering (sorted keys, defaults
    // filled in), so any two requests for the same simulation — however
    // spelled — share one key.
    Json doc = Json::object();
    switch (op) {
      case Op::kPing:
      case Op::kStats:
      case Op::kMetrics:
      case Op::kCachePull:
      case Op::kCachePush:
        return std::string();
      case Op::kRun: {
        doc.set("op", Json::string("run"));
        doc.set("design", Json::string(run.design));
        Json workload = Json::array();
        for (const auto &bench : run.workload)
            workload.push(Json::string(bench));
        doc.set("workload", std::move(workload));
        doc.set("budget", Json::number(run.budget));
        doc.set("warmup", Json::number(run.warmup));
        doc.set("seed", Json::number(run.seed));
        doc.set("no_smt", Json::boolean(run.noSmt));
        doc.set("prefetch", Json::boolean(run.prefetch));
        doc.set("naive_sched", Json::boolean(run.naiveSched));
        if (run.hasBw)
            doc.set("bw", Json::number(run.bw));
        doc.set("report", Json::string(run.report));
        break;
      }
      case Op::kSweep: {
        doc.set("op", Json::string("sweep"));
        doc.set("design", Json::string(sweep.design));
        doc.set("bench", Json::string(sweep.bench));
        doc.set("het", Json::boolean(sweep.het));
        doc.set("no_smt", Json::boolean(sweep.noSmt));
        if (sweep.hasBw)
            doc.set("bw", Json::number(sweep.bw));
        break;
      }
      case Op::kIsolated: {
        doc.set("op", Json::string("isolated"));
        Json benches = Json::array();
        for (const auto &bench : isolated.benches)
            benches.push(Json::string(bench));
        doc.set("benches", std::move(benches));
        break;
      }
      case Op::kSweepChunk: {
        doc.set("op", Json::string("sweep_chunk"));
        doc.set("design", Json::string(chunk.sweep.design));
        doc.set("bench", Json::string(chunk.sweep.bench));
        doc.set("het", Json::boolean(chunk.sweep.het));
        doc.set("no_smt", Json::boolean(chunk.sweep.noSmt));
        if (chunk.sweep.hasBw)
            doc.set("bw", Json::number(chunk.sweep.bw));
        Json rows = Json::array();
        for (const std::uint32_t n : chunk.rows)
            rows.push(Json::number(std::uint64_t{n}));
        doc.set("rows", std::move(rows));
        break;
      }
      case Op::kSchedule: {
        doc.set("op", Json::string("schedule"));
        doc.set("design", Json::string(schedule.design));
        Json benchmarks = Json::array();
        for (const auto &bench : schedule.benchmarks)
            benchmarks.push(Json::string(bench));
        doc.set("benchmarks", std::move(benchmarks));
        doc.set("policy", Json::string(schedule.policy));
        doc.set("no_smt", Json::boolean(schedule.noSmt));
        if (schedule.hasBw)
            doc.set("bw", Json::number(schedule.bw));
        break;
      }
    }
    return doc.dump();
}

Json
makeResponse(Op op)
{
    Json doc = Json::object();
    doc.set("ok", Json::boolean(true));
    doc.set("op", Json::string(opName(op)));
    return doc;
}

Json
makeError(const std::string &code, const std::string &message)
{
    Json doc = Json::object();
    doc.set("ok", Json::boolean(false));
    doc.set("error", Json::string(code));
    if (!message.empty())
        doc.set("message", Json::string(message));
    return doc;
}

} // namespace serve
} // namespace smtflex
