/**
 * @file
 * The serve load generator: K concurrent connections replaying a
 * deterministic request mix against a server, measuring throughput and
 * latency percentiles and reporting the server's cache behaviour. Used
 * by the `smtflex_loadgen` tool and driven in-process by the loopback
 * e2e test (which also verifies responses byte-for-byte).
 */

#ifndef SMTFLEX_SERVE_LOADGEN_H
#define SMTFLEX_SERVE_LOADGEN_H

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "serve/client.h"
#include "serve/json.h"

namespace smtflex {
namespace serve {

struct LoadGenOptions
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 7333;
    /**
     * Multi-target mode: when non-empty, connection k dials
     * targets[k % targets.size()] round-robin and host/port above are
     * ignored. Lets one loadgen spread a closed loop over a coordinator
     * fleet (or compare N backends side by side). The live monitor and
     * the post-run stats snapshot use the first target.
     */
    std::vector<std::pair<std::string, std::uint16_t>> targets;
    /** Concurrent connections (each one closed-loop). */
    unsigned connections = 8;
    unsigned requestsPerConnection = 50;
    /** Seed of the deterministic request sequence. */
    std::uint64_t seed = 1;
    /**
     * Request mix as `op=weight` pairs, e.g. "ping=2,run=4,sweep=1,
     * isolated=1,schedule=1". Weights are relative integers; ops with
     * weight 0 are never sent. The pseudo-op `warmrun` draws from a
     * family of run requests sharing one (design, workload, warmup,
     * seed) prefix with growing budgets — on a server with SMTFLEX_CKPT
     * set, later family members warm-start from snapshots the earlier
     * ones saved (the ckpt.* counters in `--stats-interval` output and
     * the final summary make the reuse visible).
     */
    std::string mix = "ping=2,run=4,sweep=1,isolated=1";
    /** deadline_ms attached to every simulation request (0 = none). */
    std::uint64_t deadlineMs = 0;
    /** delay_ms attached to ping requests (0 = inline pings). */
    std::uint64_t pingDelayMs = 0;
    /** Distinct simulation variants per op — smaller pools mean more
     * server-side cache hits and coalescing. */
    unsigned distinct = 6;
    /** Instruction budget/warmup of generated run requests (kept small:
     * the loadgen measures the serving path, not the simulator). */
    std::uint64_t budget = 2'000;
    std::uint64_t warmup = 500;
    /**
     * Expected "output" text per request canonical key. When a response's
     * request key is present here, the output is compared byte-for-byte
     * and mismatches are counted (the loopback e2e correctness check).
     */
    std::map<std::string, std::string> expectedOutputs;

    /**
     * Chaos mode: between well-formed requests every connection
     * periodically misbehaves, then reconnects and resumes. The server
     * must shrug every mode off — stay up, keep other connections
     * unaffected, and answer the post-chaos well-formed requests.
     *   ""              no chaos (default)
     *   "disconnect"    abruptly close mid-exchange (request sent, reply
     *                   abandoned)
     *   "partial-frame" send a prefix of a valid frame, hang briefly,
     *                   then vanish
     *   "garbage"       send random bytes that are not a valid frame
     */
    std::string chaos;
    /** A chaos act fires roughly every chaosEvery requests (>= 1). */
    unsigned chaosEvery = 3;

    /**
     * Live monitoring: when > 0, a monitor thread on its own connection
     * polls the server's stats op every statsIntervalMs and inform()s a
     * one-line snapshot (requests/executed/cache_hits/queue_depth) while
     * the load runs. 0 = off.
     */
    std::uint64_t statsIntervalMs = 0;

    /** Client-side robustness knobs applied to every connection. */
    RetryPolicy retry;
};

struct LoadGenReport
{
    std::uint64_t sent = 0;
    std::uint64_t ok = 0;
    std::uint64_t overloaded = 0;
    std::uint64_t deadline = 0;
    std::uint64_t otherErrors = 0;
    std::uint64_t mismatches = 0; ///< outputs differing from expected
    std::uint64_t chaosEvents = 0; ///< chaos acts performed
    std::uint64_t reconnects = 0;  ///< client reconnects (chaos + retry)
    double seconds = 0.0;
    double throughput = 0.0; ///< completed requests per second
    double p50Us = 0.0, p90Us = 0.0, p99Us = 0.0, maxUs = 0.0;

    // Server-side counters snapshotted after the run.
    std::uint64_t serverCacheHits = 0;
    std::uint64_t serverCoalesced = 0;
    std::uint64_t serverExecuted = 0;
    double cacheHitRate = 0.0; ///< hits / (hits + coalesced + executed)

    // Snapshot warm-start counters (zero when SMTFLEX_CKPT is off
    // server-side or the server predates them).
    std::uint64_t serverCkptHits = 0;
    std::uint64_t serverCkptMisses = 0;
    double ckptHitRate = 0.0; ///< ckpt hits / (hits + misses)

    /** Human-readable multi-line summary. */
    std::string summary() const;
};

/**
 * The deterministic pool of simulation requests the generator draws from
 * (without ids/deadlines). Exposed so tests can precompute the expected
 * output of every request the generator can possibly send.
 */
std::vector<Json> loadgenRequestPool(const LoadGenOptions &options);

/** Run the load; fatal() on connection failures. */
LoadGenReport runLoadGen(const LoadGenOptions &options);

} // namespace serve
} // namespace smtflex

#endif // SMTFLEX_SERVE_LOADGEN_H
