#include "json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.h"

namespace smtflex {
namespace serve {

Json
Json::boolean(bool value)
{
    Json j;
    j.type_ = Type::kBool;
    j.bool_ = value;
    return j;
}

Json
Json::number(double value)
{
    Json j;
    j.type_ = Type::kNumber;
    j.number_ = value;
    return j;
}

Json
Json::number(std::uint64_t value)
{
    return number(static_cast<double>(value));
}

Json
Json::string(std::string value)
{
    Json j;
    j.type_ = Type::kString;
    j.string_ = std::move(value);
    return j;
}

Json
Json::array()
{
    Json j;
    j.type_ = Type::kArray;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::kObject;
    return j;
}

void
Json::expect(Type type, const char *what) const
{
    if (type_ != type)
        fatal("json: node is not ", what);
}

bool
Json::asBool() const
{
    expect(Type::kBool, "a boolean");
    return bool_;
}

double
Json::asNumber() const
{
    expect(Type::kNumber, "a number");
    return number_;
}

const std::string &
Json::asString() const
{
    expect(Type::kString, "a string");
    return string_;
}

std::uint64_t
Json::asU64() const
{
    expect(Type::kNumber, "a number");
    if (number_ < 0.0)
        fatal("json: expected a non-negative integer, got ", number_);
    if (number_ > 9007199254740992.0) // 2^53
        fatal("json: integer ", number_, " too large");
    if (number_ != std::floor(number_))
        fatal("json: expected an integer, got ", number_);
    return static_cast<std::uint64_t>(number_);
}

bool
Json::has(const std::string &key) const
{
    return type_ == Type::kObject && object_.count(key) != 0;
}

const Json &
Json::at(const std::string &key) const
{
    expect(Type::kObject, "an object");
    const auto it = object_.find(key);
    if (it == object_.end())
        fatal("json: missing member '", key, "'");
    return it->second;
}

Json &
Json::set(const std::string &key, Json value)
{
    expect(Type::kObject, "an object");
    object_[key] = std::move(value);
    return *this;
}

const std::map<std::string, Json> &
Json::members() const
{
    expect(Type::kObject, "an object");
    return object_;
}

Json &
Json::push(Json value)
{
    expect(Type::kArray, "an array");
    array_.push_back(std::move(value));
    return *this;
}

const Json &
Json::at(std::size_t index) const
{
    expect(Type::kArray, "an array");
    if (index >= array_.size())
        fatal("json: index ", index, " out of range (size ",
              array_.size(), ")");
    return array_[index];
}

const std::vector<Json> &
Json::elements() const
{
    expect(Type::kArray, "an array");
    return array_;
}

std::size_t
Json::size() const
{
    if (type_ == Type::kArray)
        return array_.size();
    if (type_ == Type::kObject)
        return object_.size();
    fatal("json: size() on a scalar node");
}

std::string
Json::escape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

void
dumpNumber(std::string &out, double value)
{
    // Integral values inside the double-exact range print as plain
    // integers (ids, budgets, counters); everything else round-trips
    // through %.17g.
    if (value == std::floor(value) && std::abs(value) < 9007199254740992.0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(value));
        out += buf;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
}

} // namespace

std::string
Json::dump() const
{
    std::string out;
    switch (type_) {
      case Type::kNull:
        out = "null";
        break;
      case Type::kBool:
        out = bool_ ? "true" : "false";
        break;
      case Type::kNumber:
        dumpNumber(out, number_);
        break;
      case Type::kString:
        out = '"' + escape(string_) + '"';
        break;
      case Type::kArray: {
        out = '[';
        bool first = true;
        for (const auto &element : array_) {
            if (!first)
                out += ',';
            first = false;
            out += element.dump();
        }
        out += ']';
        break;
      }
      case Type::kObject: {
        out = '{';
        bool first = true;
        for (const auto &[key, value] : object_) {
            if (!first)
                out += ',';
            first = false;
            out += '"' + escape(key) + "\":" + value.dump();
        }
        out += '}';
        break;
      }
    }
    return out;
}

namespace {

/** Recursive-descent parser over a complete in-memory document. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json parseDocument()
    {
        const Json value = parseValue(0);
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return value;
    }

  private:
    static constexpr int kMaxDepth = 64;

    [[noreturn]] void fail(const std::string &what) const
    {
        fatal("json: ", what, " at offset ", pos_);
    }

    void skipWhitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    char take()
    {
        const char c = peek();
        ++pos_;
        return c;
    }

    void expectLiteral(const char *literal)
    {
        for (const char *p = literal; *p; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("invalid literal (expected '") + literal +
                     "')");
            ++pos_;
        }
    }

    Json parseValue(int depth)
    {
        if (depth > kMaxDepth)
            fail("nesting too deep");
        skipWhitespace();
        switch (peek()) {
          case '{':
            return parseObject(depth);
          case '[':
            return parseArray(depth);
          case '"':
            return Json::string(parseString());
          case 't':
            expectLiteral("true");
            return Json::boolean(true);
          case 'f':
            expectLiteral("false");
            return Json::boolean(false);
          case 'n':
            expectLiteral("null");
            return Json();
          default:
            return parseNumber();
        }
    }

    Json parseObject(int depth)
    {
        take(); // '{'
        Json obj = Json::object();
        skipWhitespace();
        if (peek() == '}') {
            take();
            return obj;
        }
        while (true) {
            skipWhitespace();
            if (peek() != '"')
                fail("expected a string object key");
            std::string key = parseString();
            skipWhitespace();
            if (take() != ':')
                fail("expected ':' after object key");
            obj.set(std::move(key), parseValue(depth + 1));
            skipWhitespace();
            const char c = take();
            if (c == '}')
                return obj;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    Json parseArray(int depth)
    {
        take(); // '['
        Json arr = Json::array();
        skipWhitespace();
        if (peek() == ']') {
            take();
            return arr;
        }
        while (true) {
            arr.push(parseValue(depth + 1));
            skipWhitespace();
            const char c = take();
            if (c == ']')
                return arr;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    unsigned parseHex4()
    {
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = take();
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("invalid \\u escape digit");
        }
        return value;
    }

    void appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    std::string parseString()
    {
        take(); // '"'
        std::string out;
        while (true) {
            const char c = take();
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            const char esc = take();
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                unsigned cp = parseHex4();
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    // High surrogate: a low surrogate must follow.
                    if (take() != '\\' || take() != 'u')
                        fail("unpaired surrogate");
                    const unsigned lo = parseHex4();
                    if (lo < 0xdc00 || lo > 0xdfff)
                        fail("invalid low surrogate");
                    cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                    fail("unpaired low surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                fail("invalid escape character");
            }
        }
    }

    Json parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (pos_ >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_])))
            fail("invalid number");
        // RFC 8259: no leading zeros ("01" is two tokens, i.e. invalid).
        if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
            std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))
            fail("invalid number (leading zero)");
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                fail("invalid number (bare decimal point)");
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                fail("invalid number (empty exponent)");
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        const std::string token = text_.substr(start, pos_ - start);
        return Json::number(std::strtod(token.c_str(), nullptr));
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

} // namespace serve
} // namespace smtflex
