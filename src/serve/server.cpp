#include "server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "ckpt/store.h"
#include "common/fault.h"
#include "common/log.h"
#include "exec/experiment_runner.h"
#include "exec/thread_pool.h"

namespace smtflex {
namespace serve {

namespace {

/** epoll user-data slots below this value are the server's own fds. */
constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kStopTag = 1;
constexpr std::uint64_t kWakeTag = 2;

std::atomic<Server *> gSignalServer{nullptr};

void
onTerminationSignal(int)
{
    if (Server *server = gSignalServer.load())
        server->requestStop();
}

void
makePipe(int fds[2])
{
    if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0)
        fatal("serve: pipe2 failed: ", std::strerror(errno));
}

void
drainPipe(int fd)
{
    char buf[64];
    while (::read(fd, buf, sizeof(buf)) > 0) {
    }
}

} // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), engine_(options_.study),
      responses_(options_.responseCacheCapacity)
{
    makePipe(stopPipe_);
    makePipe(wakePipe_);
    const std::size_t jobs = exec::ThreadPool::global().concurrency();
    batchMax_ = options_.batchMax ? options_.batchMax : jobs;
    const std::size_t capacity =
        options_.queueCapacity ? options_.queueCapacity : 2 * jobs;
    queue_ = std::make_unique<BoundedQueue<Job>>(capacity);
    registerMetrics();
}

void
Server::registerMetrics()
{
    // The metric names under serve.* are exactly the stats op's JSON keys;
    // statsBody() is a subtree walk, so renaming one here renames it on
    // the wire.
    telemetry::attachCounters(registry_, "serve", stats_);
    // Online-scheduling decision counters (the schedule op's engine path).
    telemetry::attachCounters(registry_, "sched", engine_.schedStats());
    // Warm-start checkpointing (smtflex::ckpt): the process-wide
    // counters — saves, hits/misses, corrupt skips, resume cost. Always
    // registered (all zero when SMTFLEX_CKPT is off) so dashboards and
    // the stats op have a stable schema.
    telemetry::attachCounters(registry_, "ckpt", ckpt::processStats());
    registry_.gauge("serve.queue_depth",
                    [this] { return std::uint64_t{queue_->size()}; });
    registry_.gauge("serve.queue_capacity",
                    [this] { return std::uint64_t{queue_->capacity()}; });
    registry_.gauge("serve.in_flight",
                    [this] { return std::uint64_t{inFlight_.size()}; });
    registry_.gauge("serve.jobs", [] {
        return std::uint64_t{exec::ThreadPool::global().concurrency()};
    });
    registry_.gauge("serve.response_cache_entries",
                    [this] { return std::uint64_t{responses_.size()}; });
    registry_.gauge("serve.result_cache_entries", [this] {
        return std::uint64_t{engine_.resultCache().size()};
    });
    registry_.info("serve.result_cache_path",
                   [this] { return engine_.resultCache().path(); });
    registry_.gauge("serve.result_cache_corrupt_lines", [this] {
        return engine_.resultCache().corruptLinesSkipped();
    });
    registry_.gaugeBool("serve.draining", [this] { return draining_; });
}

Server::~Server()
{
    if (gSignalServer.load() == this)
        installSignalHandlers(nullptr);
    if (dispatcher_.joinable()) {
        queue_->close();
        dispatcher_.join();
    }
    for (auto &[id, conn] : connections_) {
        if (conn->fd >= 0)
            ::close(conn->fd);
    }
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (epollFd_ >= 0)
        ::close(epollFd_);
    for (const int fd : {stopPipe_[0], stopPipe_[1], wakePipe_[0],
                         wakePipe_[1]}) {
        if (fd >= 0)
            ::close(fd);
    }
}

void
Server::installSignalHandlers(Server *server)
{
    gSignalServer.store(server);
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = server ? onTerminationSignal : SIG_DFL;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESTART;
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);
}

void
Server::requestStop()
{
    // Async-signal-safe: one write on the pre-opened pipe.
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = ::write(stopPipe_[1], &byte, 1);
}

void
Server::bind()
{
    if (listenFd_ >= 0)
        return;
    listenFd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         0);
    if (listenFd_ < 0)
        fatal("serve: socket failed: ", std::strerror(errno));
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1)
        fatal("serve: invalid listen address '", options_.host, "'");
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fatal("serve: cannot bind ", options_.host, ":", options_.port, ": ",
              std::strerror(errno));
    if (::listen(listenFd_, SOMAXCONN) != 0)
        fatal("serve: listen failed: ", std::strerror(errno));

    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        fatal("serve: getsockname failed: ", std::strerror(errno));
    boundPort_ = ntohs(addr.sin_port);
}

void
Server::run()
{
    bind();
    epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epollFd_ < 0)
        fatal("serve: epoll_create1 failed: ", std::strerror(errno));

    auto watch = [&](int fd, std::uint64_t tag, std::uint32_t events) {
        epoll_event ev;
        std::memset(&ev, 0, sizeof(ev));
        ev.events = events;
        ev.data.u64 = tag;
        if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) != 0)
            fatal("serve: epoll_ctl failed: ", std::strerror(errno));
    };
    watch(listenFd_, kListenerTag, EPOLLIN);
    watch(stopPipe_[0], kStopTag, EPOLLIN);
    watch(wakePipe_[0], kWakeTag, EPOLLIN);

    dispatcher_ = std::thread([this] { dispatcherLoop(); });
    eventLoop();

    // Drain complete: every queued/in-flight request answered and every
    // response flushed. Persist what the engine learned — atomically, so
    // a crash during shutdown cannot tear the cache — and leave.
    dispatcher_.join();
    engine_.resultCache().checkpoint();
    for (auto &[id, conn] : connections_) {
        ::close(conn->fd);
        conn->fd = -1;
    }
    connections_.clear();
    ::close(epollFd_);
    epollFd_ = -1;
    ::close(listenFd_);
    listenFd_ = -1;
}

bool
Server::drained() const
{
    if (!draining_)
        return false;
    if (!inFlight_.empty() || executing_.load() != 0 || queue_->size() != 0)
        return false;
    {
        std::lock_guard<std::mutex> lock(completionsMutex_);
        if (!completions_.empty())
            return false;
    }
    for (const auto &[id, conn] : connections_) {
        if (conn->outOffset < conn->outBuffer.size())
            return false;
    }
    return true;
}

void
Server::eventLoop()
{
    std::vector<epoll_event> events(64);
    while (true) {
        const int n = ::epoll_wait(epollFd_, events.data(),
                                   static_cast<int>(events.size()),
                                   draining_ ? 50 : -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("serve: epoll_wait failed: ", std::strerror(errno));
        }
        for (int i = 0; i < n; ++i) {
            const std::uint64_t tag = events[i].data.u64;
            const std::uint32_t mask = events[i].events;
            if (tag == kListenerTag) {
                acceptConnections();
            } else if (tag == kStopTag) {
                drainPipe(stopPipe_[0]);
                if (!draining_) {
                    draining_ = true;
                    // Reject new connections; keep serving live ones
                    // until the backlog drains.
                    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, listenFd_, nullptr);
                    queue_->close();
                    if (options_.drainTimeoutMs > 0)
                        drainDeadline_ = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(
                                options_.drainTimeoutMs);
                } else {
                    // A repeated stop signal means "stop waiting": give
                    // up on clients that won't read their responses.
                    forceCloseStalled();
                }
            } else if (tag == kWakeTag) {
                drainPipe(wakePipe_[0]);
                drainCompletions();
            } else {
                const auto it = connections_.find(tag);
                if (it == connections_.end())
                    continue;
                Connection &conn = *it->second;
                if (mask & (EPOLLHUP | EPOLLERR)) {
                    closeConnection(conn.id);
                    continue;
                }
                if (mask & EPOLLIN)
                    handleReadable(conn);
                // The read handler may close the connection; re-check.
                if (connections_.count(tag) && (mask & EPOLLOUT))
                    handleWritable(*connections_.at(tag));
            }
        }
        drainCompletions();
        // Drain must not hang on a client that stopped reading its
        // socket: past the deadline, stalled connections are cut loose
        // (their results stay memoised) so run() can return.
        if (draining_ && options_.drainTimeoutMs > 0 &&
            std::chrono::steady_clock::now() >= drainDeadline_)
            forceCloseStalled();
        if (drained())
            return;
    }
}

void
Server::forceCloseStalled()
{
    std::vector<std::uint64_t> stalled;
    for (const auto &[id, conn] : connections_) {
        if (conn->outOffset < conn->outBuffer.size())
            stalled.push_back(id);
    }
    for (const std::uint64_t id : stalled) {
        warn("serve: force-closing connection ", id,
             " with unflushed output during drain");
        closeConnection(id);
    }
}

void
Server::acceptConnections()
{
    while (true) {
        const int fd = ::accept4(listenFd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            if (errno == EINTR)
                continue;
            warn("serve: accept failed: ", std::strerror(errno));
            return;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        conn->id = nextConnectionId_++;
        conn->decoder = FrameDecoder(options_.maxFrame);

        epoll_event ev;
        std::memset(&ev, 0, sizeof(ev));
        ev.events = EPOLLIN;
        ev.data.u64 = conn->id;
        if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
            warn("serve: epoll_ctl(conn) failed: ", std::strerror(errno));
            ::close(fd);
            continue;
        }
        stats_.connectionsAccepted.fetch_add(1);
        connections_.emplace(conn->id, std::move(conn));
    }
}

void
Server::handleReadable(Connection &conn)
{
    // Read at most this much per epoll event. A client that streams
    // continuously would otherwise keep read() returning data forever,
    // growing the decode buffer without bound and starving every other
    // connection (the loop runs on the single I/O thread). Leftover bytes
    // are safe: level-triggered epoll reports the fd readable again.
    constexpr std::size_t kReadBudget = 256 * 1024;
    char buf[16 * 1024];
    std::size_t taken = 0;
    while (taken < kReadBudget) {
        // Injection seams: a short read exercises frame reassembly, an
        // EAGAIN storm the level-triggered re-poll (leftover bytes are
        // reported readable again).
        if (fault::shouldFire(fault::Site::kNetEagain))
            break;
        std::size_t want = sizeof(buf);
        if (fault::shouldFire(fault::Site::kNetShortRead))
            want = std::max<std::uint64_t>(
                1, fault::param(fault::Site::kNetShortRead, 1));
        const ssize_t n = ::read(conn.fd, buf, want);
        if (n > 0) {
            conn.decoder.feed(buf, static_cast<std::size_t>(n));
            taken += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0) {
            closeConnection(conn.id);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        closeConnection(conn.id);
        return;
    }

    std::string payload;
    while (true) {
        try {
            if (!conn.decoder.next(payload))
                break;
        } catch (const FatalError &e) {
            // Oversized frame: the stream position is unrecoverable.
            // Mark for close first — sendRaw may flush (and close) the
            // connection synchronously, after which conn is gone.
            stats_.badRequests.fetch_add(1);
            conn.closeAfterFlush = true;
            Json body = makeError("frame_too_large", e.what());
            body.set("id", Json::number(std::uint64_t{0}));
            sendRaw(conn, body.dump());
            return;
        }
        processPayload(conn, payload);
        if (!connections_.count(conn.id))
            return; // processPayload closed it
    }
}

void
Server::processPayload(Connection &conn, const std::string &payload)
{
    stats_.requestsReceived.fetch_add(1);
    Json doc;
    try {
        doc = Json::parse(payload);
    } catch (const FatalError &e) {
        stats_.badRequests.fetch_add(1);
        Json body = makeError("bad_request", e.what());
        body.set("id", Json::number(std::uint64_t{0}));
        sendRaw(conn, body.dump());
        return;
    }

    Request request;
    try {
        request = parseRequest(doc);
    } catch (const FatalError &e) {
        stats_.badRequests.fetch_add(1);
        Json body = makeError("bad_request", e.what());
        body.set("id", Json::number(extractId(doc)));
        sendRaw(conn, body.dump());
        return;
    }

    // Fast paths answered on the I/O thread.
    if (request.op == Op::kStats) {
        sendBody(conn, statsBody(), request.id);
        return;
    }
    if (request.op == Op::kMetrics) {
        sendBody(conn, metricsBody(), request.id);
        return;
    }
    if (request.op == Op::kPing && request.delayMs == 0) {
        Json body = makeResponse(Op::kPing);
        body.set("pong", Json::boolean(true));
        sendBody(conn, body, request.id);
        return;
    }
    // The federation ops read/write the thread-safe ResultCache directly
    // — no simulation, so they are answered inline like stats/metrics.
    if (request.op == Op::kCachePull) {
        sendBody(conn, cachePullBody(request.cachePull), request.id);
        return;
    }
    if (request.op == Op::kCachePush) {
        sendBody(conn, cachePushBody(request.cachePush), request.id);
        return;
    }
    admit(conn, std::move(request));
}

void
Server::admit(Connection &conn, Request request)
{
    if (draining_) {
        stats_.shutdownRejected.fetch_add(1);
        sendBody(conn, makeError("shutting_down", "server is draining"),
                 request.id);
        return;
    }

    std::string key = request.canonicalKey();
    const bool cacheable = !key.empty();
    if (cacheable) {
        if (const auto hit = responses_.lookup(key)) {
            stats_.cacheHits.fetch_add(1);
            sendBody(conn, Json::parse(*hit), request.id);
            return;
        }
    } else {
        // Delayed pings never coalesce: give each a unique key.
        key = "ping;" + std::to_string(conn.id) + ';' +
            std::to_string(pingSequence_++);
    }

    Waiter waiter{conn.id, request.id, request.hasId};
    const auto it = inFlight_.find(key);
    if (it != inFlight_.end()) {
        // Same simulation already on its way: share the computation.
        stats_.coalesced.fetch_add(1);
        it->second.push_back(waiter);
        return;
    }

    Job job;
    job.request = std::move(request);
    job.key = key;
    if (job.request.deadlineMs > 0) {
        job.hasDeadline = true;
        job.deadline = std::chrono::steady_clock::now() +
            std::chrono::milliseconds(job.request.deadlineMs);
    }
    if (!queue_->tryPush(std::move(job))) {
        stats_.overloaded.fetch_add(1);
        sendBody(conn,
                 makeError("overloaded", "admission queue is full; retry"),
                 waiter.requestId);
        return;
    }
    inFlight_.emplace(std::move(key), std::vector<Waiter>{waiter});
}

namespace {

Json
jsonFromMetric(const telemetry::MetricValue &value)
{
    switch (value.type()) {
      case telemetry::MetricValue::Type::kU64:
        return Json::number(value.asU64());
      case telemetry::MetricValue::Type::kDouble:
        return Json::number(value.asDouble());
      case telemetry::MetricValue::Type::kBool:
        return Json::boolean(value.asBool());
      case telemetry::MetricValue::Type::kString:
        return Json::string(value.asString());
    }
    return Json::number(std::uint64_t{0});
}

} // namespace

Json
Server::statsBody() const
{
    // A walk over the serve.* subtree with the prefix stripped: the JSON
    // keys are the registered metric names, and Json objects render in
    // sorted key order, so the body is byte-identical to the
    // pre-telemetry hand-marshalled one.
    Json body = makeResponse(Op::kStats);
    Json stats = Json::object();
    registry_.forEachInSubtree(
        "serve", [&](const std::string &name, telemetry::MetricKind,
                     const telemetry::MetricValue &value) {
            stats.set(name, jsonFromMetric(value));
        });
    // Checkpoint counters ride along namespaced (serve keys stay bare,
    // so the pre-ckpt body is a strict subset of this one).
    registry_.forEachInSubtree(
        "ckpt", [&](const std::string &name, telemetry::MetricKind,
                    const telemetry::MetricValue &value) {
            stats.set("ckpt." + name, jsonFromMetric(value));
        });
    body.set("stats", std::move(stats));
    return body;
}

Json
Server::cachePullBody(const CachePullRequest &req)
{
    Json body = makeResponse(Op::kCachePull);
    Json records = Json::object();
    std::uint64_t misses = 0;
    for (const auto &key : req.keys) {
        if (const auto hit = engine_.resultCache().lookup(key)) {
            Json values = Json::array();
            for (const double v : *hit)
                values.push(Json::number(v));
            records.set(key, std::move(values));
        } else {
            ++misses;
        }
    }
    body.set("records", std::move(records));
    body.set("misses", Json::number(misses));
    return body;
}

Json
Server::cachePushBody(const CachePushRequest &req)
{
    Json body = makeResponse(Op::kCachePush);
    std::uint64_t stored = 0;
    std::uint64_t rejected = 0;
    for (const auto &[key, values] : req.records) {
        if (key.empty() || values.empty()) {
            ++rejected;
            continue;
        }
        engine_.resultCache().store(key, values);
        ++stored;
    }
    body.set("stored", Json::number(stored));
    body.set("rejected", Json::number(rejected));
    return body;
}

Json
Server::metricsBody() const
{
    Json body = makeResponse(Op::kMetrics);
    Json metrics = Json::object();
    registry_.forEach([&](const std::string &path, telemetry::MetricKind,
                          const telemetry::MetricValue &value) {
        metrics.set(path, jsonFromMetric(value));
    });
    body.set("metrics", std::move(metrics));
    body.set("exposition", Json::string(registry_.exposition()));
    return body;
}

void
Server::sendBody(Connection &conn, const Json &body, std::uint64_t id)
{
    Json copy = body;
    copy.set("id", Json::number(id));
    sendRaw(conn, copy.dump(), id);
}

void
Server::sendRaw(Connection &conn, std::string payload, std::uint64_t id)
{
    if (payload.size() > options_.maxFrame) {
        // The frame cap applies to both directions (protocol.h): an
        // oversized body would poison the client's decoder, so substitute
        // a small error the client can actually parse and correlate.
        Json body = makeError(
            "response_too_large",
            "response of " + std::to_string(payload.size()) +
                " bytes exceeds the " + std::to_string(options_.maxFrame) +
                "-byte frame limit");
        body.set("id", Json::number(id));
        payload = body.dump();
    }
    conn.outBuffer += encodeFrame(payload);
    stats_.responsesSent.fetch_add(1);
    handleWritable(conn);
}

void
Server::handleWritable(Connection &conn)
{
    while (conn.outOffset < conn.outBuffer.size()) {
        std::size_t chunk = conn.outBuffer.size() - conn.outOffset;
        if (fault::shouldFire(fault::Site::kNetShortWrite))
            chunk = std::max<std::uint64_t>(
                1, fault::param(fault::Site::kNetShortWrite, 1));
        // MSG_NOSIGNAL: a client that vanished mid-response must come
        // back as EPIPE (the connection is dropped below), not raise
        // SIGPIPE and kill the server.
        const ssize_t n =
            ::send(conn.fd, conn.outBuffer.data() + conn.outOffset,
                   std::min(chunk,
                            conn.outBuffer.size() - conn.outOffset),
                   MSG_NOSIGNAL);
        if (n > 0) {
            conn.outOffset += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            if (!conn.wantWrite) {
                conn.wantWrite = true;
                updateEpoll(conn);
            }
            return;
        }
        if (errno == EINTR)
            continue;
        closeConnection(conn.id);
        return;
    }
    // Fully flushed.
    conn.outBuffer.clear();
    conn.outOffset = 0;
    if (conn.wantWrite) {
        conn.wantWrite = false;
        updateEpoll(conn);
    }
    if (conn.closeAfterFlush)
        closeConnection(conn.id);
}

void
Server::updateEpoll(Connection &conn)
{
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events =
        EPOLLIN | (conn.wantWrite ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
    ev.data.u64 = conn.id;
    ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void
Server::closeConnection(std::uint64_t connection_id)
{
    const auto it = connections_.find(connection_id);
    if (it == connections_.end())
        return;
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
    ::close(it->second->fd);
    connections_.erase(it);
}

void
Server::drainCompletions()
{
    while (true) {
        Completion completion;
        {
            std::lock_guard<std::mutex> lock(completionsMutex_);
            if (completions_.empty())
                return;
            completion = std::move(completions_.front());
            completions_.pop_front();
        }
        const auto it = inFlight_.find(completion.key);
        if (it == inFlight_.end())
            continue;
        const Json body = Json::parse(completion.body);
        for (const Waiter &waiter : it->second) {
            const auto connIt = connections_.find(waiter.connectionId);
            if (connIt == connections_.end())
                continue; // client went away; result stays memoised
            Json copy = body;
            copy.set("id", Json::number(waiter.requestId));
            sendRaw(*connIt->second, copy.dump(), waiter.requestId);
        }
        inFlight_.erase(it);
    }
}

void
Server::postCompletion(Completion completion)
{
    {
        std::lock_guard<std::mutex> lock(completionsMutex_);
        completions_.push_back(std::move(completion));
    }
    const char byte = 'w';
    [[maybe_unused]] const ssize_t n = ::write(wakePipe_[1], &byte, 1);
}

Server::Completion
Server::executeJob(const Job &job)
{
    Completion completion;
    completion.key = job.key;
    if (job.hasDeadline && std::chrono::steady_clock::now() > job.deadline) {
        stats_.deadlineExpired.fetch_add(1);
        completion.body =
            makeError("deadline", "deadline expired before execution")
                .dump();
        return completion;
    }
    try {
        Json body;
        const bool delegated = options_.simExecutor &&
            (job.request.op == Op::kRun || job.request.op == Op::kSweep ||
             job.request.op == Op::kIsolated ||
             job.request.op == Op::kSchedule);
        if (delegated) {
            // Coordinator mode: the dist layer answers the simulation
            // ops (sharding them across backends) while this server
            // keeps owning the wire, admission and memoisation.
            body = options_.simExecutor(job.request);
            completion.cacheable = true;
        } else {
            switch (job.request.op) {
              case Op::kPing:
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(job.request.delayMs));
                body = makeResponse(Op::kPing);
                body.set("pong", Json::boolean(true));
                break;
              case Op::kRun:
                body = makeResponse(Op::kRun);
                body.set("output",
                         Json::string(runText(engine_, job.request.run)));
                completion.cacheable = true;
                break;
              case Op::kSweep:
                body = makeResponse(Op::kSweep);
                body.set("output",
                         Json::string(
                             sweepText(engine_, job.request.sweep)));
                completion.cacheable = true;
                break;
              case Op::kIsolated:
                body = makeResponse(Op::kIsolated);
                body.set("output",
                         Json::string(
                             isolatedText(engine_, job.request.isolated)));
                completion.cacheable = true;
                break;
              case Op::kSchedule:
                body = makeResponse(Op::kSchedule);
                body.set("output",
                         Json::string(
                             scheduleText(engine_, job.request.schedule)));
                completion.cacheable = true;
                break;
              case Op::kSweepChunk: {
                body = makeResponse(Op::kSweepChunk);
                Json records = Json::object();
                for (const auto &[key, values] :
                     sweepChunkRecords(engine_, job.request.chunk.sweep,
                                       job.request.chunk.rows)) {
                    Json list = Json::array();
                    for (const double v : values)
                        list.push(Json::number(v));
                    records.set(key, std::move(list));
                }
                body.set("records", std::move(records));
                completion.cacheable = true;
                break;
              }
              case Op::kStats:
                body = statsBody(); // unreachable: stats is inline
                break;
              case Op::kMetrics:
                body = metricsBody(); // unreachable: metrics is inline
                break;
              case Op::kCachePull:
              case Op::kCachePush:
                // Unreachable: the federation ops are answered inline.
                body = makeError("internal", "federation op in worker");
                break;
            }
        }
        stats_.executed.fetch_add(1);
        completion.body = body.dump();
    } catch (const FatalError &e) {
        completion.cacheable = false;
        completion.body = makeError("failed", e.what()).dump();
    } catch (const std::exception &e) {
        completion.cacheable = false;
        completion.body = makeError("internal", e.what()).dump();
    }
    return completion;
}

void
Server::dispatcherLoop()
{
    std::vector<Job> batch;
    exec::ExperimentRunner runner;
    while (queue_->popBatch(batch, batchMax_) > 0) {
        executing_.store(batch.size());
        // One pool task per request: independent simulations spread over
        // the work-stealing pool, exactly like a figure sweep.
        auto completions =
            runner.mapItems(batch, [&](const Job &job) {
                return executeJob(job);
            });
        executing_.store(0);
        for (auto &completion : completions) {
            if (completion.cacheable)
                responses_.store(completion.key, completion.body);
            postCompletion(std::move(completion));
        }
    }
}

} // namespace serve
} // namespace smtflex
