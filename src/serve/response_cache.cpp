#include "response_cache.h"

#include <algorithm>
#include <functional>

namespace smtflex {
namespace serve {

ResponseCache::ResponseCache(std::size_t capacity)
    : perShard_(std::max<std::size_t>(1, capacity / kNumShards))
{
}

std::size_t
ResponseCache::shardOf(const std::string &key) const
{
    return std::hash<std::string>{}(key) % kNumShards;
}

std::optional<std::string>
ResponseCache::lookup(const std::string &key) const
{
    const Shard &shard = shards_[shardOf(key)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end())
        return std::nullopt;
    return it->second;
}

void
ResponseCache::store(const std::string &key, std::string body)
{
    Shard &shard = shards_[shardOf(key)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto [it, inserted] = shard.entries.try_emplace(key);
    it->second = std::move(body);
    if (!inserted)
        return; // overwrite keeps the original eviction position
    shard.order.push_back(key);
    while (shard.order.size() > perShard_) {
        shard.entries.erase(shard.order.front());
        shard.order.pop_front();
    }
}

std::size_t
ResponseCache::size() const
{
    std::size_t total = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        total += shard.entries.size();
    }
    return total;
}

} // namespace serve
} // namespace smtflex
