/**
 * @file
 * A minimal blocking client for the smtflex::serve protocol, shared by
 * the `smtflex_loadgen` tool and the serve test suite. One Client is one
 * TCP connection; requests may be pipelined (send several, then receive)
 * and replies are correlated through the echoed "id" member.
 *
 * Robustness: connect() remembers its endpoint, so a RetryPolicy can make
 * call() survive connection-level failures — it reconnects with capped
 * exponential backoff and resends the request (serve requests are
 * idempotent: simulations are deterministic and memoised server-side).
 * Per-op timeouts bound how long one send/receive may block. Both default
 * off, preserving the historic fail-fast behaviour. The net.* fault sites
 * (common/fault.h) fire inside the socket loops, so short reads/writes,
 * EAGAIN storms and mid-frame disconnects are testable on demand.
 */

#ifndef SMTFLEX_SERVE_CLIENT_H
#define SMTFLEX_SERVE_CLIENT_H

#include <cstdint>
#include <string>

#include "serve/json.h"
#include "serve/protocol.h"

namespace smtflex {
namespace serve {

/** Reconnect-and-retry behaviour of Client::call(). */
struct RetryPolicy
{
    /** Extra attempts after the first failure (0 = historic fail-fast). */
    unsigned maxRetries = 0;
    /** Sleep before retry k is backoffBaseMs << (k-1), capped. */
    std::uint64_t backoffBaseMs = 10;
    std::uint64_t backoffCapMs = 1'000;
    /** Bound on one blocking send/receive, 0 = wait forever. A timed-out
     * op counts as a connection failure (the stream position is gone). */
    std::uint64_t opTimeoutMs = 0;
    /** Bound on the TCP connect itself, 0 = blocking connect. A backend
     * that accepts but never answers still costs the full opTimeoutMs;
     * this cap is what lets a health probe fail fast on a host that does
     * not even complete the handshake. */
    std::uint64_t connectTimeoutMs = 0;
};

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;

    /** Connect to @p host:@p port; fatal() on failure. The endpoint is
     * remembered for reconnect(). */
    void connect(const std::string &host, std::uint16_t port);

    /** Re-establish the connection to the last connect()ed endpoint,
     * discarding any partially received frame. */
    void reconnect();

    bool connected() const { return fd_ >= 0; }

    /** Close the connection (idempotent). */
    void close();

    /** Retry/timeout behaviour of call(); default = fail fast. */
    void setRetryPolicy(const RetryPolicy &policy) { retry_ = policy; }
    const RetryPolicy &retryPolicy() const { return retry_; }

    /** Send one request document (does not wait for the reply). */
    void send(const Json &request);

    /**
     * Block until the next response frame arrives and parse it.
     * fatal() on EOF, timeout or protocol errors.
     */
    Json receive();

    /**
     * send() + receive() — the closed-loop convenience call. Under a
     * RetryPolicy with maxRetries > 0, a connection-level failure
     * (disconnect, timeout, refused reconnect) is retried by
     * reconnecting with capped exponential backoff and resending
     * @p request; fatal() once the attempts are exhausted.
     */
    Json call(const Json &request);

    /** Reconnect attempts call() has performed (diagnostics). */
    std::uint64_t reconnects() const { return reconnects_; }

    /**
     * Write raw bytes to the socket, bypassing framing — a chaos-testing
     * aid (the loadgen's garbage and partial-frame modes). fatal() on
     * connection failure.
     */
    void sendBytes(const void *data, std::size_t size);

  private:
    int fd_ = -1;
    FrameDecoder decoder_;
    RetryPolicy retry_;
    std::string host_;
    std::uint16_t port_ = 0;
    std::uint64_t reconnects_ = 0;

    /** poll() until the socket is ready for @p events or the op timeout
     * expires; fatal() on timeout. */
    void waitReady(short events, const char *what);
};

} // namespace serve
} // namespace smtflex

#endif // SMTFLEX_SERVE_CLIENT_H
