/**
 * @file
 * A minimal blocking client for the smtflex::serve protocol, shared by
 * the `smtflex_loadgen` tool and the serve test suite. One Client is one
 * TCP connection; requests may be pipelined (send several, then receive)
 * and replies are correlated through the echoed "id" member.
 */

#ifndef SMTFLEX_SERVE_CLIENT_H
#define SMTFLEX_SERVE_CLIENT_H

#include <cstdint>
#include <string>

#include "serve/json.h"
#include "serve/protocol.h"

namespace smtflex {
namespace serve {

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;

    /** Connect to @p host:@p port; fatal() on failure. */
    void connect(const std::string &host, std::uint16_t port);

    bool connected() const { return fd_ >= 0; }

    /** Close the connection (idempotent). */
    void close();

    /** Send one request document (does not wait for the reply). */
    void send(const Json &request);

    /**
     * Block until the next response frame arrives and parse it.
     * fatal() on EOF or protocol errors.
     */
    Json receive();

    /** send() + receive() — the closed-loop convenience call. */
    Json call(const Json &request);

  private:
    int fd_ = -1;
    FrameDecoder decoder_;
};

} // namespace serve
} // namespace smtflex

#endif // SMTFLEX_SERVE_CLIENT_H
