/**
 * @file
 * The command core shared by the `smtflex` CLI and the smtflex::serve
 * network server: typed request structs for the run/sweep/isolated
 * commands plus renderers that produce the exact text the CLI prints.
 *
 * Both front ends call the same renderer with the same StudyEngine entry
 * points, so a served response is byte-identical to the serial CLI output
 * for the same request — the property the loopback e2e test asserts.
 */

#ifndef SMTFLEX_SERVE_COMMANDS_H
#define SMTFLEX_SERVE_COMMANDS_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/chip_config.h"
#include "study/study_engine.h"

namespace smtflex {
namespace serve {

/** Parameters of a `run` command (one multi-program simulation). */
struct RunRequest
{
    std::string design = "4B";
    std::vector<std::string> workload; ///< benchmark names, >= 1
    std::uint64_t budget = 12'000;
    std::uint64_t warmup = 3'000;
    std::uint64_t seed = 42;
    bool noSmt = false;
    bool prefetch = false;
    bool naiveSched = false;
    bool hasBw = false;
    double bw = 8.0;
    std::string report; ///< "", "text", "csv-threads" or "csv-cores"
};

/** Parameters of a `sweep` command (STP/ANTT/power vs thread count). */
struct SweepRequest
{
    std::string design = "4B";
    std::string bench; ///< homogeneous single-benchmark sweep when set
    bool het = false;  ///< heterogeneous mixes instead of homogeneous
    bool noSmt = false;
    bool hasBw = false;
    double bw = 8.0;
};

/** Parameters of an `isolated` command (per-core-type IPC table). */
struct IsolatedRequest
{
    std::vector<std::string> benches; ///< empty = all SPEC profiles
};

/**
 * Parameters of a `schedule` command (online thread-to-core placement;
 * DESIGN.md §14). Sample budgets, warmup and seed are governed by the
 * engine's StudyOptions — like sweep, the decision is a pure function of
 * (StudyOptions, design, mix, policy), which keeps it memoisable.
 */
struct ScheduleRequest
{
    std::string design = "4B";
    std::vector<std::string> benchmarks; ///< SPEC or PARSEC names, >= 1
    std::string policy = "pairing";      ///< onlinePolicyNames() member
    bool noSmt = false;
    bool hasBw = false;
    double bw = 8.0;
};

/**
 * Resolve a design name against the paper and alternative design sets and
 * apply the request-level config switches; fatal() on unknown names.
 */
ChipConfig buildDesign(const std::string &name, bool no_smt, bool has_bw,
                       double bw, bool prefetch);

/** Validate @p req without running it: design and benchmark names exist,
 * workload non-empty, report kind known. fatal() on violations. */
void validateRun(const RunRequest &req);
void validateSweep(const SweepRequest &req);
void validateIsolated(const IsolatedRequest &req);
void validateSchedule(const ScheduleRequest &req);

/** Render the command output (identical to the CLI's stdout text). */
std::string runText(StudyEngine &engine, const RunRequest &req);
std::string sweepText(StudyEngine &engine, const SweepRequest &req);
std::string isolatedText(StudyEngine &engine, const IsolatedRequest &req);
std::string scheduleText(StudyEngine &engine, const ScheduleRequest &req);

/**
 * Compute the sweep rows named by @p rows (same dispatch as sweepText:
 * bench / het / homogeneous) and collect the backing ResultCache records
 * — every row's multiprogram keys plus the isolated characterisation
 * keys. Rows beyond the design's context count are skipped, mirroring
 * sweepText's early stop. This is the unit of work a dist coordinator
 * shards: the caller re-renders text locally from the records, which is
 * what makes a coordinated sweep byte-identical to a single-node one.
 */
std::vector<std::pair<std::string, std::vector<double>>>
sweepChunkRecords(StudyEngine &engine, const SweepRequest &req,
                  const std::vector<std::uint32_t> &rows);

} // namespace serve
} // namespace smtflex

#endif // SMTFLEX_SERVE_COMMANDS_H
