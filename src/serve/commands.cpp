#include "commands.h"

#include <cstdarg>
#include <cstdio>
#include <sstream>
#include <unordered_set>

#include "common/log.h"
#include "exec/experiment_runner.h"
#include "metrics/metrics.h"
#include "online/online_policy.h"
#include "online/online_profile.h"
#include "report/sim_report.h"
#include "sched/scheduler.h"
#include "sim/chip_sim.h"
#include "sim/power_summary.h"
#include "study/design_space.h"
#include "trace/spec_profiles.h"
#include "workload/multiprogram.h"

namespace smtflex {
namespace serve {

namespace {

/** printf-append onto a std::string (the renderers reproduce the CLI's
 * printf formatting byte for byte). */
void
appendf(std::string &out, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed > 0) {
        const std::size_t old = out.size();
        out.resize(old + static_cast<std::size_t>(needed) + 1);
        std::vsnprintf(out.data() + old, static_cast<std::size_t>(needed) + 1,
                       fmt, args);
        out.resize(old + static_cast<std::size_t>(needed));
    }
    va_end(args);
}

bool
knownBenchmark(const std::string &name)
{
    // Anything specProfile() resolves (selected or extended suite) is
    // valid, matching what the CLI always accepted.
    for (const auto &known : specAllBenchmarkNames()) {
        if (known == name)
            return true;
    }
    return false;
}

bool
knownMixableBenchmark(const std::string &name)
{
    // schedule mixes accept PARSEC worker kernels alongside SPEC.
    for (const auto &known : mixableBenchmarkNames()) {
        if (known == name)
            return true;
    }
    return false;
}

} // namespace

ChipConfig
buildDesign(const std::string &name, bool no_smt, bool has_bw, double bw,
            bool prefetch)
{
    ChipConfig cfg;
    bool found = false;
    for (const auto &known : paperDesignNames()) {
        if (known == name) {
            cfg = paperDesign(name);
            found = true;
        }
    }
    for (const auto &known : alternativeDesignNames()) {
        if (known == name) {
            cfg = alternativeDesign(name);
            found = true;
        }
    }
    if (!found)
        fatal("unknown design '", name, "' (see `smtflex designs`)");
    if (no_smt)
        cfg = cfg.withSmt(false);
    if (has_bw)
        cfg = cfg.withBandwidth(bw);
    if (prefetch) {
        for (auto &core : cfg.cores)
            core.dataPrefetch = true;
    }
    return cfg;
}

void
validateRun(const RunRequest &req)
{
    buildDesign(req.design, req.noSmt, req.hasBw, req.bw, req.prefetch);
    if (req.workload.empty())
        fatal("run: --workload bench1,bench2,... required");
    for (const auto &bench : req.workload) {
        if (!knownBenchmark(bench))
            fatal("run: unknown benchmark '", bench,
                  "' (see `smtflex benchmarks`)");
    }
    if (req.budget == 0)
        fatal("run: budget must be positive");
    if (!req.report.empty() && req.report != "text" &&
        req.report != "csv-threads" && req.report != "csv-cores")
        fatal("unknown --report kind '", req.report, "'");
}

void
validateSweep(const SweepRequest &req)
{
    buildDesign(req.design, req.noSmt, req.hasBw, req.bw, false);
    if (!req.bench.empty() && !knownBenchmark(req.bench))
        fatal("sweep: unknown benchmark '", req.bench,
              "' (see `smtflex benchmarks`)");
    if (!req.bench.empty() && req.het)
        fatal("sweep: --bench and --het are mutually exclusive");
}

void
validateIsolated(const IsolatedRequest &req)
{
    for (const auto &bench : req.benches) {
        if (!knownBenchmark(bench))
            fatal("isolated: unknown benchmark '", bench,
                  "' (see `smtflex benchmarks`)");
    }
}

void
validateSchedule(const ScheduleRequest &req)
{
    buildDesign(req.design, req.noSmt, req.hasBw, req.bw, false);
    if (req.benchmarks.empty())
        fatal("schedule: --benchmarks bench1,bench2,... required");
    for (const auto &bench : req.benchmarks) {
        if (!knownMixableBenchmark(bench))
            fatal("schedule: unknown benchmark '", bench,
                  "' (SPEC or PARSEC kernel; see `smtflex benchmarks`)");
    }
    if (!online::isOnlinePolicy(req.policy)) {
        std::string known;
        for (const auto &name : online::onlinePolicyNames())
            known += (known.empty() ? "" : ", ") + name;
        fatal("schedule: unknown policy '", req.policy, "' (expected ",
              known, ")");
    }
}

std::string
runText(StudyEngine &engine, const RunRequest &req)
{
    validateRun(req);
    const ChipConfig cfg =
        buildDesign(req.design, req.noSmt, req.hasBw, req.bw, req.prefetch);

    MultiProgramWorkload workload;
    workload.name = "cli";
    for (const auto &bench : req.workload)
        workload.programs.push_back(&specProfile(bench));
    const auto specs = workload.specs(req.budget, req.warmup);

    const Placement placement = req.naiveSched
        ? scheduleNaive(cfg, specs.size())
        : scheduleOffline(cfg, specs, engine.offline());

    ChipSim chip(cfg);
    const SimResult result = chip.runMultiProgram(specs, placement, req.seed);

    std::vector<double> isolated;
    for (const auto &spec : specs)
        isolated.push_back(engine.isolatedIpc(spec.profile->name,
                                              CoreType::kBig));

    std::string out;
    appendf(out, "design %s, %zu programs, %llu cycles (%.2f us)\n\n",
            cfg.name.c_str(), specs.size(),
            static_cast<unsigned long long>(result.cycles),
            result.seconds() * 1e6);
    appendf(out, "%-12s %6s %6s %10s %10s\n", "program", "core", "slot",
            "IPC", "norm.prog");
    const auto np = normalisedProgress(result, isolated);
    for (std::size_t i = 0; i < result.threads.size(); ++i) {
        appendf(out, "%-12s %6u %6u %10.3f %10.3f\n",
                result.threads[i].benchmark.c_str(),
                placement.entries[i].core, placement.entries[i].slot,
                result.threads[i].ipc(), np[i]);
    }
    appendf(out, "\nSTP %.3f | ANTT %.3f\n",
            systemThroughput(result, isolated),
            avgNormalisedTurnaround(result, isolated));
    if (req.report == "text") {
        std::ostringstream os;
        writeTextReport(os, result, engine.powerModel());
        appendf(out, "\n%s", os.str().c_str());
    } else if (req.report == "csv-threads") {
        std::ostringstream os;
        writeThreadCsv(os, result);
        appendf(out, "\n%s", os.str().c_str());
    } else if (req.report == "csv-cores") {
        std::ostringstream os;
        writeCoreCsv(os, result, engine.powerModel());
        appendf(out, "\n%s", os.str().c_str());
    }
    const PowerSummary power =
        summarisePower(result, engine.powerModel(), true);
    appendf(out,
            "power %.1f W (cores %.1f static + %.1f dynamic, uncore "
            "%.1f) | energy %.2e J\n",
            power.avgPowerW, power.coreStaticW, power.coreDynamicW,
            power.uncoreW, power.energyJ);
    return out;
}

std::string
sweepText(StudyEngine &engine, const SweepRequest &req)
{
    validateSweep(req);
    const ChipConfig cfg =
        buildDesign(req.design, req.noSmt, req.hasBw, req.bw, false);

    std::string out;
    appendf(out, "%-8s %10s %10s %10s\n", "threads", "STP", "ANTT",
            "power(W)");
    for (const std::uint32_t n : engine.sweepThreadCounts()) {
        if (n > cfg.totalContexts())
            break;
        RunMetrics m;
        if (!req.bench.empty())
            m = engine.homogeneousBenchmarkAt(cfg, req.bench, n);
        else if (req.het)
            m = engine.heterogeneousAt(cfg, n);
        else
            m = engine.homogeneousAt(cfg, n);
        appendf(out, "%-8u %10.3f %10.2f %10.1f\n", n, m.stp, m.antt,
                m.powerGatedW);
    }
    return out;
}

std::vector<std::pair<std::string, std::vector<double>>>
sweepChunkRecords(StudyEngine &engine, const SweepRequest &req,
                  const std::vector<std::uint32_t> &rows)
{
    validateSweep(req);
    const ChipConfig cfg =
        buildDesign(req.design, req.noSmt, req.hasBw, req.bw, false);

    // Any computed row builds the full offline table as a side effect, so
    // the isolated characterisation records travel with every chunk.
    std::vector<std::string> keys = engine.isolationCacheKeys();
    for (const std::uint32_t n : rows) {
        if (n > cfg.totalContexts())
            continue;
        if (!req.bench.empty())
            engine.homogeneousBenchmarkAt(cfg, req.bench, n);
        else if (req.het)
            engine.heterogeneousAt(cfg, n);
        else
            engine.homogeneousAt(cfg, n);
        const auto row_keys =
            engine.sweepRowCacheKeys(cfg, req.bench, req.het, n);
        keys.insert(keys.end(), row_keys.begin(), row_keys.end());
    }

    std::vector<std::pair<std::string, std::vector<double>>> records;
    std::unordered_set<std::string> seen;
    for (const auto &key : keys) {
        if (!seen.insert(key).second)
            continue;
        if (const auto hit = engine.resultCache().lookup(key))
            records.emplace_back(key, *hit);
    }
    return records;
}

std::string
isolatedText(StudyEngine &engine, const IsolatedRequest &req)
{
    validateIsolated(req);
    std::string out;
    appendf(out, "%-12s %8s %8s %8s %10s %10s\n", "bench", "big", "medium",
            "small", "big/med", "big/small");
    std::vector<std::string> benches = req.benches;
    if (benches.empty())
        benches = specBenchmarkNames();
    // Independent characterisation runs: fan out over the pool and render
    // in request order (same structure as the CLI always used).
    struct Row
    {
        double big = 0.0, medium = 0.0, small = 0.0;
    };
    exec::ExperimentRunner runner;
    const auto rows = runner.mapItems(benches, [&](const std::string &bench) {
        Row row;
        row.big = engine.isolatedIpc(bench, CoreType::kBig);
        row.medium = engine.isolatedIpc(bench, CoreType::kMedium);
        row.small = engine.isolatedIpc(bench, CoreType::kSmall);
        return row;
    });
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const Row &r = rows[i];
        appendf(out, "%-12s %8.3f %8.3f %8.3f %10.2f %10.2f\n",
                benches[i].c_str(), r.big, r.medium, r.small,
                r.big / r.medium, r.big / r.small);
    }
    return out;
}

std::string
scheduleText(StudyEngine &engine, const ScheduleRequest &req)
{
    validateSchedule(req);
    const ChipConfig cfg =
        buildDesign(req.design, req.noSmt, req.hasBw, req.bw, false);
    const MultiProgramWorkload mix = mixWorkload(req.benchmarks);
    const PlacementDecision decision =
        engine.decidePlacement(cfg, mix, req.policy);

    std::string out;
    appendf(out, "design %s, policy %s, %zu threads\n\n", cfg.name.c_str(),
            req.policy.c_str(), mix.size());
    appendf(out, "%-14s %-8s %6s %6s %-8s\n", "program", "class", "core",
            "slot", "type");
    for (std::size_t i = 0; i < mix.programs.size(); ++i) {
        const std::uint32_t core = decision.placement.entries[i].core;
        appendf(out, "%-14s %-8s %6u %6u %-8s\n",
                mix.programs[i]->name.c_str(),
                online::threadClassName(decision.classes[i]), core,
                decision.placement.entries[i].slot,
                coreTypeTag(cfg.cores[core].type));
    }
    appendf(out,
            "\npredicted STP %.3f | predicted ANTT %.3f\n"
            "epochs %u | migrations %.0f | reclassifications %.0f | "
            "quanta sampled %.0f | samples run %.0f\n",
            decision.predictedStp, decision.predictedAntt, decision.epochs,
            decision.migrations, decision.reclassifications,
            decision.quantaSampled, decision.samplesRun);
    return out;
}

} // namespace serve
} // namespace smtflex
