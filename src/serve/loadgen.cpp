#include "loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "common/env.h"
#include "common/log.h"
#include "common/rng.h"
#include "online/online_policy.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "trace/spec_profiles.h"

namespace smtflex {
namespace serve {

namespace {

const std::vector<std::string> &
designPool()
{
    static const std::vector<std::string> pool = {"4B", "2B4m", "8m"};
    return pool;
}

/** Weighted op names expanded from the mix spec ("run=4,ping=2"). */
std::vector<std::string>
expandMix(const std::string &mix)
{
    std::vector<std::string> expanded;
    std::istringstream ss(mix);
    std::string token;
    while (std::getline(ss, token, ',')) {
        const auto eq = token.find('=');
        if (eq == std::string::npos)
            fatal("loadgen: mix entry '", token, "' is not op=weight");
        const std::string op = token.substr(0, eq);
        if (op != "ping" && op != "stats" && op != "metrics" &&
            op != "run" && op != "sweep" && op != "isolated" &&
            op != "schedule" && op != "warmrun")
            fatal("loadgen: unknown op '", op, "' in mix");
        const std::uint64_t weight =
            parseU64(token.substr(eq + 1), "mix weight for '" + op + "'");
        for (std::uint64_t i = 0; i < weight; ++i)
            expanded.push_back(op);
    }
    if (expanded.empty())
        fatal("loadgen: empty request mix '", mix, "'");
    return expanded;
}

enum class ChaosMode { kNone, kDisconnect, kPartialFrame, kGarbage };

ChaosMode
chaosModeFromName(const std::string &name)
{
    if (name.empty())
        return ChaosMode::kNone;
    if (name == "disconnect")
        return ChaosMode::kDisconnect;
    if (name == "partial-frame")
        return ChaosMode::kPartialFrame;
    if (name == "garbage")
        return ChaosMode::kGarbage;
    fatal("loadgen: unknown chaos mode '", name,
          "' (disconnect, partial-frame, garbage)");
}

/**
 * One chaos act on @p client, then a reconnect so the connection is
 * usable again. The act itself may race the server closing us first —
 * every failure path just feeds the reconnect.
 */
void
performChaos(Client &client, ChaosMode mode, Rng &rng)
{
    try {
        switch (mode) {
          case ChaosMode::kNone:
            return;
          case ChaosMode::kDisconnect: {
            // Request sent, reply abandoned mid-exchange: the server's
            // completion fan-out must tolerate the missing waiter.
            Json doc = Json::object();
            doc.set("op", Json::string("ping"));
            doc.set("delay_ms", Json::number(std::uint64_t{5}));
            client.send(doc);
            break;
          }
          case ChaosMode::kPartialFrame: {
            // A prefix of a legitimate frame, then silence, then gone:
            // exercises the server's half-frame buffering and its
            // tolerance of clients that never finish.
            Json doc = Json::object();
            doc.set("op", Json::string("stats"));
            const std::string frame = encodeFrame(doc.dump());
            const std::size_t cut =
                1 + rng.nextRange(frame.size() - 1);
            client.sendBytes(frame.data(), cut);
            std::this_thread::sleep_for(std::chrono::milliseconds(
                1 + rng.nextRange(10)));
            break;
          }
          case ChaosMode::kGarbage: {
            // Random bytes. Whatever they decode to — an absurd length
            // prefix, unparseable JSON — the server must answer with a
            // protocol error or close only THIS connection.
            char junk[64];
            for (char &c : junk)
                c = static_cast<char>(rng.next() & 0xFF);
            client.sendBytes(junk, sizeof(junk));
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            break;
          }
        }
    } catch (const FatalError &) {
        // The server may have cut us off mid-act; that is the point.
    }
    try {
        client.reconnect();
    } catch (const FatalError &) {
        // Transient refusal (listen backlog pressure); the next call()
        // retries under the client's policy.
    }
}

/** Size of the warm-prefix family appended at the end of the request
 * pool: `run` requests sharing one (design, workload, warmup, seed)
 * prefix with budgets base*1..base*kWarmFamilySize. They share a
 * snapshot resume key, so a ckpt-enabled server warm-starts the later
 * ones from the earlier ones' snapshots. */
constexpr std::size_t kWarmFamilySize = 4;

/** The endpoint connection @p index dials: round-robin over targets
 * when set, the single host/port otherwise. */
std::pair<std::string, std::uint16_t>
endpointFor(const LoadGenOptions &options, std::size_t index)
{
    if (options.targets.empty())
        return {options.host, options.port};
    return options.targets[index % options.targets.size()];
}

} // namespace

std::vector<Json>
loadgenRequestPool(const LoadGenOptions &options)
{
    const auto &benches = specBenchmarkNames();
    std::vector<Json> pool;
    for (unsigned v = 0; v < options.distinct; ++v) {
        // One generator per variant: the pool is independent of how many
        // variants a particular run asks for first.
        Rng rng(options.seed, 1'000 + v);

        Json run = Json::object();
        run.set("op", Json::string("run"));
        run.set("design",
                Json::string(designPool()[rng.nextRange(
                    designPool().size())]));
        const std::size_t programs = 2 + rng.nextRange(3);
        Json workload = Json::array();
        for (std::size_t i = 0; i < programs; ++i)
            workload.push(
                Json::string(benches[rng.nextRange(benches.size())]));
        run.set("workload", std::move(workload));
        run.set("budget", Json::number(options.budget));
        run.set("warmup", Json::number(options.warmup));
        run.set("seed", Json::number(std::uint64_t{42}));
        pool.push_back(std::move(run));

        Json sweep = Json::object();
        sweep.set("op", Json::string("sweep"));
        sweep.set("design",
                  Json::string(designPool()[rng.nextRange(
                      designPool().size())]));
        if (v % 2 == 1)
            sweep.set("bench",
                      Json::string(benches[rng.nextRange(benches.size())]));
        pool.push_back(std::move(sweep));

        Json isolated = Json::object();
        isolated.set("op", Json::string("isolated"));
        Json list = Json::array();
        const std::size_t count = 1 + rng.nextRange(3);
        for (std::size_t i = 0; i < count; ++i)
            list.push(Json::string(benches[rng.nextRange(benches.size())]));
        isolated.set("benches", std::move(list));
        pool.push_back(std::move(isolated));

        Json schedule = Json::object();
        schedule.set("op", Json::string("schedule"));
        schedule.set("design",
                     Json::string(designPool()[rng.nextRange(
                         designPool().size())]));
        const std::size_t mix_size = 2 + rng.nextRange(3);
        Json mix_list = Json::array();
        for (std::size_t i = 0; i < mix_size; ++i)
            mix_list.push(
                Json::string(benches[rng.nextRange(benches.size())]));
        schedule.set("benchmarks", std::move(mix_list));
        const auto &policies = online::onlinePolicyNames();
        schedule.set("policy",
                     Json::string(policies[rng.nextRange(policies.size())]));
        pool.push_back(std::move(schedule));
    }

    // The warm-prefix family (always the pool's last kWarmFamilySize
    // entries; the `warmrun` mix op draws from exactly these). Fixed
    // design/workload/seed — only the budget grows.
    for (std::size_t step = 1; step <= kWarmFamilySize; ++step) {
        Json warm = Json::object();
        warm.set("op", Json::string("run"));
        warm.set("design", Json::string("4B"));
        Json workload = Json::array();
        workload.push(Json::string("mcf"));
        workload.push(Json::string("milc"));
        warm.set("workload", std::move(workload));
        warm.set("budget", Json::number(options.budget * step));
        warm.set("warmup", Json::number(options.warmup));
        warm.set("seed", Json::number(std::uint64_t{42}));
        pool.push_back(std::move(warm));
    }
    return pool;
}

std::string
LoadGenReport::summary() const
{
    std::ostringstream os;
    os << "requests   " << sent << " sent, " << ok << " ok, " << overloaded
       << " overloaded, " << deadline << " deadline, " << otherErrors
       << " other errors\n";
    if (mismatches)
        os << "MISMATCHES " << mismatches
           << " responses differed from the serial reference\n";
    if (chaosEvents || reconnects)
        os << "chaos      " << chaosEvents << " acts, " << reconnects
           << " retry reconnects\n";
    os.setf(std::ios::fixed);
    os.precision(1);
    os << "throughput " << throughput << " req/s over " << seconds
       << " s\n";
    os << "latency us p50 " << p50Us << ", p90 " << p90Us << ", p99 "
       << p99Us << ", max " << maxUs << "\n";
    os.precision(3);
    os << "server     cache_hits " << serverCacheHits << ", coalesced "
       << serverCoalesced << ", executed " << serverExecuted
       << ", hit_rate " << cacheHitRate << "\n";
    if (serverCkptHits + serverCkptMisses > 0)
        os << "ckpt       warm_hits " << serverCkptHits << ", misses "
           << serverCkptMisses << ", hit_rate " << ckptHitRate << "\n";
    return os.str();
}

LoadGenReport
runLoadGen(const LoadGenOptions &options)
{
    const std::vector<Json> pool = loadgenRequestPool(options);
    const std::vector<std::string> mix = expandMix(options.mix);

    // Group pool entries by op for the weighted pick. The warm-prefix
    // family (the pool's tail, see loadgenRequestPool) forms its own
    // group so `warmrun` weight steers prefix-sharing load exclusively.
    std::vector<std::size_t> runs, sweeps, isolateds, schedules, warmruns;
    const std::size_t warm_begin = pool.size() - kWarmFamilySize;
    for (std::size_t i = 0; i < pool.size(); ++i) {
        if (i >= warm_begin) {
            warmruns.push_back(i);
            continue;
        }
        const std::string &op = pool[i].at("op").asString();
        (op == "run"        ? runs
             : op == "sweep"    ? sweeps
             : op == "schedule" ? schedules
                                : isolateds)
            .push_back(i);
    }

    struct PerConnection
    {
        std::vector<double> latenciesUs;
        std::uint64_t sent = 0, ok = 0, overloaded = 0, deadline = 0,
                      otherErrors = 0, mismatches = 0, chaosEvents = 0,
                      reconnects = 0;
    };
    std::vector<PerConnection> results(options.connections);
    const ChaosMode chaosMode = chaosModeFromName(options.chaos);
    if (chaosMode != ChaosMode::kNone && options.chaosEvery == 0)
        fatal("loadgen: chaosEvery must be >= 1");

    // Live monitor: its own connection polling the stats op, one
    // inform() line per interval. Best-effort — a refused connection or
    // a dying server just ends the monitoring, never the load.
    std::atomic<bool> monitorStop{false};
    std::thread monitor;
    if (options.statsIntervalMs > 0) {
        monitor = std::thread([&] {
            Json statsReq = Json::object();
            statsReq.set("op", Json::string("stats"));
            Client client;
            try {
                const auto target = endpointFor(options, 0);
                client.connect(target.first, target.second);
            } catch (const FatalError &) {
                return;
            }
            while (!monitorStop.load(std::memory_order_relaxed)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(options.statsIntervalMs));
                if (monitorStop.load(std::memory_order_relaxed))
                    break;
                try {
                    const Json reply = client.call(statsReq);
                    if (!reply.at("ok").asBool())
                        continue;
                    const Json &stats = reply.at("stats");
                    // Snapshot warm-start rate, when the server exposes
                    // the ckpt.* counters.
                    std::string ckpt;
                    if (stats.has("ckpt.hits")) {
                        const std::uint64_t hits =
                            stats.at("ckpt.hits").asU64();
                        const std::uint64_t misses =
                            stats.at("ckpt.misses").asU64();
                        std::ostringstream os;
                        os << ", ckpt_hits " << hits << "/"
                           << (hits + misses);
                        ckpt = os.str();
                    }
                    inform("loadgen: server requests ",
                           stats.at("requests").asU64(), ", executed ",
                           stats.at("executed").asU64(), ", cache_hits ",
                           stats.at("cache_hits").asU64(), ", coalesced ",
                           stats.at("coalesced").asU64(), ", overloaded ",
                           stats.at("overloaded").asU64(), ", queue_depth ",
                           stats.at("queue_depth").asU64(), ckpt);
                } catch (const FatalError &) {
                    return;
                }
            }
        });
    }

    const auto started = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(options.connections);
    for (unsigned c = 0; c < options.connections; ++c) {
        threads.emplace_back([&, c] {
            PerConnection &mine = results[c];
            Client client;
            try {
                client.setRetryPolicy(options.retry);
                const auto target = endpointFor(options, c);
                client.connect(target.first, target.second);
                Rng rng(options.seed, c);
                Rng chaosRng(options.seed, 5'000 + c);
                for (unsigned i = 0; i < options.requestsPerConnection;
                     ++i) {
                    if (chaosMode != ChaosMode::kNone &&
                        chaosRng.nextRange(options.chaosEvery) == 0) {
                        performChaos(client, chaosMode, chaosRng);
                        mine.chaosEvents++;
                    }
                    const std::string &op =
                        mix[rng.nextRange(mix.size())];
                    Json doc;
                    if (op == "ping") {
                        doc = Json::object();
                        doc.set("op", Json::string("ping"));
                        if (options.pingDelayMs)
                            doc.set("delay_ms",
                                    Json::number(options.pingDelayMs));
                    } else if (op == "stats" || op == "metrics") {
                        doc = Json::object();
                        doc.set("op", Json::string(op));
                    } else {
                        const auto &indices = op == "run" ? runs
                            : op == "warmrun"             ? warmruns
                            : op == "sweep"               ? sweeps
                            : op == "schedule"            ? schedules
                                                          : isolateds;
                        doc = pool[indices[rng.nextRange(indices.size())]];
                    }
                    doc.set("id",
                            Json::number(std::uint64_t{c} * 1'000'000 + i));
                    if (options.deadlineMs &&
                        (op == "run" || op == "warmrun" ||
                         op == "sweep" ||
                         op == "isolated" || op == "schedule"))
                        doc.set("deadline_ms",
                                Json::number(options.deadlineMs));

                    const auto t0 = std::chrono::steady_clock::now();
                    const Json reply = client.call(doc);
                    const auto t1 = std::chrono::steady_clock::now();
                    mine.sent++;
                    mine.latenciesUs.push_back(
                        std::chrono::duration<double, std::micro>(t1 - t0)
                            .count());

                    if (reply.at("ok").asBool()) {
                        mine.ok++;
                        if (!options.expectedOutputs.empty() &&
                            reply.has("output")) {
                            const std::string key =
                                parseRequest(doc).canonicalKey();
                            const auto it =
                                options.expectedOutputs.find(key);
                            if (it != options.expectedOutputs.end() &&
                                it->second != reply.at("output").asString())
                                mine.mismatches++;
                        }
                    } else {
                        const std::string &code =
                            reply.at("error").asString();
                        if (code == "overloaded")
                            mine.overloaded++;
                        else if (code == "deadline")
                            mine.deadline++;
                        else
                            mine.otherErrors++;
                    }
                }
            } catch (const FatalError &) {
                // Connection-level failure past the retry budget:
                // everything not yet sent on this connection is lost;
                // count one hard error.
                mine.otherErrors++;
            }
            mine.reconnects = client.reconnects();
        });
    }
    for (auto &thread : threads)
        thread.join();
    const auto finished = std::chrono::steady_clock::now();
    monitorStop.store(true, std::memory_order_relaxed);
    if (monitor.joinable())
        monitor.join();

    LoadGenReport report;
    std::vector<double> latencies;
    for (const PerConnection &mine : results) {
        report.sent += mine.sent;
        report.ok += mine.ok;
        report.overloaded += mine.overloaded;
        report.deadline += mine.deadline;
        report.otherErrors += mine.otherErrors;
        report.mismatches += mine.mismatches;
        report.chaosEvents += mine.chaosEvents;
        report.reconnects += mine.reconnects;
        latencies.insert(latencies.end(), mine.latenciesUs.begin(),
                         mine.latenciesUs.end());
    }
    report.seconds =
        std::chrono::duration<double>(finished - started).count();
    report.throughput =
        report.seconds > 0.0 ? report.sent / report.seconds : 0.0;
    if (!latencies.empty()) {
        std::sort(latencies.begin(), latencies.end());
        const auto at = [&](double q) {
            const std::size_t index = std::min(
                latencies.size() - 1,
                static_cast<std::size_t>(q * latencies.size()));
            return latencies[index];
        };
        report.p50Us = at(0.50);
        report.p90Us = at(0.90);
        report.p99Us = at(0.99);
        report.maxUs = latencies.back();
    }

    // Snapshot the server-side counters over a fresh connection.
    try {
        Client client;
        const auto target = endpointFor(options, 0);
        client.connect(target.first, target.second);
        Json statsReq = Json::object();
        statsReq.set("op", Json::string("stats"));
        const Json reply = client.call(statsReq);
        if (reply.at("ok").asBool()) {
            const Json &stats = reply.at("stats");
            report.serverCacheHits = stats.at("cache_hits").asU64();
            report.serverCoalesced = stats.at("coalesced").asU64();
            report.serverExecuted = stats.at("executed").asU64();
            const double answered = static_cast<double>(
                report.serverCacheHits + report.serverCoalesced +
                report.serverExecuted);
            report.cacheHitRate = answered > 0.0
                ? report.serverCacheHits / answered
                : 0.0;
            if (stats.has("ckpt.hits")) {
                report.serverCkptHits = stats.at("ckpt.hits").asU64();
                report.serverCkptMisses = stats.at("ckpt.misses").asU64();
                const double looked = static_cast<double>(
                    report.serverCkptHits + report.serverCkptMisses);
                report.ckptHitRate = looked > 0.0
                    ? report.serverCkptHits / looked
                    : 0.0;
            }
        }
    } catch (const FatalError &) {
        // Server may already be shutting down; leave the counters zero.
    }
    return report;
}

} // namespace serve
} // namespace smtflex
