/**
 * @file
 * A 2D-mesh network-on-chip alternative to the full crossbar.
 *
 * The paper deliberately uses a crossbar so that interconnect contention
 * does not skew results against many-core designs. This model exists to
 * *test* that rationale (bench_ablation_noc): cores sit on a square grid,
 * LLC banks are distributed across the nodes, and a request pays a per-hop
 * latency over the Manhattan distance plus bank queueing — so a 20-core
 * grid pays more than a 4-core one.
 */

#ifndef SMTFLEX_XBAR_MESH_H
#define SMTFLEX_XBAR_MESH_H

#include <cstdint>
#include <vector>

#include "ckpt/serial.h"
#include "common/types.h"

namespace smtflex {

/** Mesh NoC parameters. */
struct MeshConfig
{
    /** Per-hop router+link latency in cycles. */
    std::uint32_t hopLatency = 2;
    /** Bank service occupancy per request, cycles. */
    std::uint32_t bankOccupancy = 4;
    /** Number of LLC banks distributed over the grid. */
    std::uint32_t numBanks = 8;
};

/**
 * Timestamp-based mesh model with XY distance and per-bank queueing.
 */
class MeshNoc
{
  public:
    MeshNoc(const MeshConfig &config, std::uint32_t num_cores);

    /** Issue a request from @p core for @p addr at @p now.
     * @return the cycle the LLC bank lookup can start. */
    Cycle request(Cycle now, Addr addr, std::uint32_t core);

    /** Latency of the response back to @p core from @p addr's bank. */
    std::uint32_t responseLatency(Addr addr, std::uint32_t core) const;

    /** Manhattan hops between @p core and @p addr's bank (>= 1). */
    std::uint32_t hops(Addr addr, std::uint32_t core) const;

    /** Grid side length. */
    std::uint32_t side() const { return side_; }

    /** Serialize/restore the mutable state (bank timestamps). */
    void saveState(ckpt::Writer &w) const;
    void loadState(ckpt::Reader &r);

  private:
    std::uint32_t bankOf(Addr addr) const;
    std::uint32_t bankNode(std::uint32_t bank) const;

    MeshConfig config_;
    std::uint32_t numCores_;
    std::uint32_t side_;
    std::vector<Cycle> bankFree_;
};

} // namespace smtflex

#endif // SMTFLEX_XBAR_MESH_H
