#include "mesh.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace smtflex {

MeshNoc::MeshNoc(const MeshConfig &config, std::uint32_t num_cores)
    : config_(config), numCores_(num_cores)
{
    if (num_cores == 0 || config_.numBanks == 0)
        fatal("MeshNoc: need cores and banks");
    side_ = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(num_cores))));
    bankFree_.assign(config_.numBanks, 0);
}

std::uint32_t
MeshNoc::bankOf(Addr addr) const
{
    return static_cast<std::uint32_t>((addr / kLineSize) %
                                      config_.numBanks);
}

std::uint32_t
MeshNoc::bankNode(std::uint32_t bank) const
{
    // Banks are spread round-robin over the core nodes.
    return bank % numCores_;
}

std::uint32_t
MeshNoc::hops(Addr addr, std::uint32_t core) const
{
    const std::uint32_t node = bankNode(bankOf(addr));
    const int cx = static_cast<int>(core % side_);
    const int cy = static_cast<int>(core / side_);
    const int bx = static_cast<int>(node % side_);
    const int by = static_cast<int>(node / side_);
    const int distance = std::abs(cx - bx) + std::abs(cy - by);
    return static_cast<std::uint32_t>(distance) + 1; // at least one router
}

Cycle
MeshNoc::request(Cycle now, Addr addr, std::uint32_t core)
{
    const Cycle arrive = now + hops(addr, core) * config_.hopLatency;
    const std::uint32_t bank = bankOf(addr);
    const Cycle start = std::max(arrive, bankFree_[bank]);
    bankFree_[bank] = start + config_.bankOccupancy;
    return start;
}

std::uint32_t
MeshNoc::responseLatency(Addr addr, std::uint32_t core) const
{
    return hops(addr, core) * config_.hopLatency;
}

void
MeshNoc::saveState(ckpt::Writer &w) const
{
    w.u32(static_cast<std::uint32_t>(bankFree_.size()));
    for (const Cycle c : bankFree_)
        w.u64(c);
}

void
MeshNoc::loadState(ckpt::Reader &r)
{
    r.count(bankFree_.size(), "mesh banks");
    for (Cycle &c : bankFree_)
        c = r.u64();
}

} // namespace smtflex
