/**
 * @file
 * Full crossbar between the cores and the shared LLC.
 *
 * The paper deliberately uses a full crossbar so that interconnect contention
 * does not favour few-big-core configurations. We model a fixed traversal
 * latency plus per-LLC-bank occupancy: distinct cores never contend in the
 * switch itself; they only serialise at a destination bank, exactly the
 * property the paper wants.
 */

#ifndef SMTFLEX_XBAR_CROSSBAR_H
#define SMTFLEX_XBAR_CROSSBAR_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace smtflex {

/** Configuration of the crossbar + LLC banking. */
struct CrossbarConfig
{
    /** One-way traversal latency in cycles. */
    std::uint32_t hopLatency = 4;
    /** Number of LLC banks (requests to one bank serialise). */
    std::uint32_t numBanks = 8;
    /** Bank service occupancy per request, cycles. */
    std::uint32_t bankOccupancy = 4;
};

/** Statistics for the crossbar / LLC front side. */
struct CrossbarStats
{
    std::uint64_t requests = 0;
    std::uint64_t totalQueueCycles = 0;

    double avgQueueCycles() const
    {
        return requests ? static_cast<double>(totalQueueCycles) / requests
                        : 0.0;
    }
};

/**
 * Timestamp-based crossbar model.
 *
 * request() returns the cycle at which the request reaches the LLC bank
 * (after traversal + any bank queueing) and reserves the bank; the response
 * hop back is accounted by the caller via responseLatency().
 */
class Crossbar
{
  public:
    explicit Crossbar(const CrossbarConfig &config);

    /**
     * Issue a request toward the LLC at cycle @p now for line @p addr.
     * @return the cycle at which the LLC lookup can start.
     */
    Cycle request(Cycle now, Addr addr);

    /** Latency of the response hop back to a core. */
    std::uint32_t responseLatency() const { return config_.hopLatency; }

    const CrossbarConfig &config() const { return config_; }
    const CrossbarStats &stats() const { return stats_; }
    void clearStats() { stats_ = CrossbarStats(); }

  private:
    CrossbarConfig config_;
    /** Next free cycle per LLC bank. */
    std::vector<Cycle> bankFree_;
    CrossbarStats stats_;
};

} // namespace smtflex

#endif // SMTFLEX_XBAR_CROSSBAR_H
