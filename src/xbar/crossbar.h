/**
 * @file
 * Full crossbar between the cores and the shared LLC.
 *
 * The paper deliberately uses a full crossbar so that interconnect contention
 * does not favour few-big-core configurations. We model a fixed traversal
 * latency plus per-LLC-bank occupancy: distinct cores never contend in the
 * switch itself; they only serialise at a destination bank, exactly the
 * property the paper wants.
 */

#ifndef SMTFLEX_XBAR_CROSSBAR_H
#define SMTFLEX_XBAR_CROSSBAR_H

#include <cstdint>
#include <vector>

#include "ckpt/serial.h"
#include "common/types.h"
#include "telemetry/registry.h"

namespace smtflex {

/** Configuration of the crossbar + LLC banking. */
struct CrossbarConfig
{
    /** One-way traversal latency in cycles. */
    std::uint32_t hopLatency = 4;
    /** Number of LLC banks (requests to one bank serialise). */
    std::uint32_t numBanks = 8;
    /** Bank service occupancy per request, cycles. */
    std::uint32_t bankOccupancy = 4;
};

/** Statistics for the crossbar / LLC front side. */
struct CrossbarStats
{
    std::uint64_t requests = 0;
    std::uint64_t totalQueueCycles = 0;

    double avgQueueCycles() const
    {
        return requests ? static_cast<double>(totalQueueCycles) / requests
                        : 0.0;
    }

    /** The telemetry field list — single source of the metric names. */
    template <typename F>
    static void forEachCounter(F &&f)
    {
        f("requests", &CrossbarStats::requests);
        f("total_queue_cycles", &CrossbarStats::totalQueueCycles);
    }
};

/**
 * Timestamp-based crossbar model.
 *
 * request() returns the cycle at which the request reaches the LLC bank
 * (after traversal + any bank queueing) and reserves the bank; the response
 * hop back is accounted by the caller via responseLatency().
 */
class Crossbar : public telemetry::StatsProvider<CrossbarStats>
{
  public:
    explicit Crossbar(const CrossbarConfig &config);

    /**
     * Issue a request toward the LLC at cycle @p now for line @p addr.
     * @return the cycle at which the LLC lookup can start.
     */
    Cycle request(Cycle now, Addr addr);

    /** Latency of the response hop back to a core. */
    std::uint32_t responseLatency() const { return config_.hopLatency; }

    const CrossbarConfig &config() const { return config_; }

    /** Register this crossbar's counters under @p prefix (e.g. "xbar"). */
    void registerMetrics(telemetry::MetricRegistry &registry,
                         const std::string &prefix) const
    {
        telemetry::attachCounters(registry, prefix, stats_);
    }

    /** Serialize/restore the mutable state (bank timestamps, stats). */
    void saveState(ckpt::Writer &w) const;
    void loadState(ckpt::Reader &r);

  private:
    CrossbarConfig config_;
    /** Next free cycle per LLC bank. */
    std::vector<Cycle> bankFree_;
};

} // namespace smtflex

#endif // SMTFLEX_XBAR_CROSSBAR_H
