#include "crossbar.h"

#include <algorithm>

#include "common/log.h"

namespace smtflex {

Crossbar::Crossbar(const CrossbarConfig &config) : config_(config)
{
    if (config_.numBanks == 0)
        fatal("Crossbar: numBanks must be > 0");
    bankFree_.assign(config_.numBanks, 0);
}

Cycle
Crossbar::request(Cycle now, Addr addr)
{
    const Cycle arrive = now + config_.hopLatency;
    const std::uint32_t bank =
        static_cast<std::uint32_t>((addr / kLineSize) % config_.numBanks);
    const Cycle start = std::max(arrive, bankFree_[bank]);
    bankFree_[bank] = start + config_.bankOccupancy;

    ++stats_.requests;
    stats_.totalQueueCycles += start - arrive;
    return start;
}

void
Crossbar::saveState(ckpt::Writer &w) const
{
    ckpt::saveCounters(w, stats_);
    w.u32(static_cast<std::uint32_t>(bankFree_.size()));
    for (const Cycle c : bankFree_)
        w.u64(c);
}

void
Crossbar::loadState(ckpt::Reader &r)
{
    ckpt::loadCounters(r, stats_);
    r.count(bankFree_.size(), "crossbar banks");
    for (Cycle &c : bankFree_)
        c = r.u64();
}

} // namespace smtflex
