#include "ckpt/store.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>

#include "common/env.h"
#include "common/log.h"

namespace smtflex {
namespace ckpt {

namespace {

std::string
hexU64(std::uint64_t v)
{
    static const char *digits = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i) {
        s[static_cast<std::size_t>(i)] = digits[v & 0xF];
        v >>= 4;
    }
    return s;
}

} // namespace

std::uint64_t
keyHash64(const std::string &key)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : key) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

SnapshotStore::SnapshotStore(std::string dir, CkptStats *stats)
    : dir_(std::move(dir)), stats_(stats)
{
    if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST)
        warn("ckpt: mkdir(", dir_, ") failed: ", std::strerror(errno));
}

bool
SnapshotStore::save(const Snapshot &snap) const
{
    const std::string path = dir_ + "/" + hexU64(keyHash64(snap.key)) +
        "-" + std::to_string(snap.cycle) + ".ckpt";
    const bool ok = writeSnapshotFile(path, snap);
    if (ok) {
        stats_->saves.fetch_add(1, std::memory_order_relaxed);
        stats_->saveBytes.fetch_add(snap.payload.size() + snap.meta.size(),
                                    std::memory_order_relaxed);
    } else {
        stats_->saveFailures.fetch_add(1, std::memory_order_relaxed);
    }
    return ok;
}

std::optional<Snapshot>
SnapshotStore::best(
    const std::string &key,
    const std::function<bool(const Snapshot &)> &eligible) const
{
    const std::string prefix = hexU64(keyHash64(key)) + "-";

    // Candidate cycles for this key, newest first.
    std::vector<std::uint64_t> cycles;
    DIR *d = ::opendir(dir_.c_str());
    if (!d)
        return std::nullopt;
    while (const dirent *entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        if (name.size() <= prefix.size() + 5 ||
            name.compare(0, prefix.size(), prefix) != 0 ||
            name.compare(name.size() - 5, 5, ".ckpt") != 0)
            continue;
        const std::string cyc =
            name.substr(prefix.size(), name.size() - prefix.size() - 5);
        if (cyc.empty() ||
            cyc.find_first_not_of("0123456789") != std::string::npos)
            continue;
        cycles.push_back(std::stoull(cyc));
    }
    ::closedir(d);
    std::sort(cycles.rbegin(), cycles.rend());

    for (const std::uint64_t cycle : cycles) {
        const std::string path =
            dir_ + "/" + prefix + std::to_string(cycle) + ".ckpt";
        std::optional<Snapshot> snap;
        try {
            snap = readSnapshotFile(path);
        } catch (const CorruptSnapshot &e) {
            stats_->corruptSkipped.fetch_add(1, std::memory_order_relaxed);
            warn("ckpt: skipping corrupt snapshot ", path, ": ", e.what());
            continue;
        }
        if (!snap)
            continue; // vanished or unreadable: not an error
        if (snap->key != key) {
            // 64-bit hash collision: a different key's snapshot. Not
            // corrupt — just not ours.
            continue;
        }
        if (eligible(*snap))
            return snap;
    }
    return std::nullopt;
}

namespace {

CkptStats gStats;

std::mutex gBindingMu;
bool gBindingDecided = false;
std::unique_ptr<ProcessBinding> gBinding;

constexpr std::uint64_t kDefaultInterval = 1'000'000;

std::unique_ptr<ProcessBinding>
bindingFromSpec(const std::string &spec)
{
    if (spec.empty())
        return nullptr;
    std::string dir = spec;
    std::uint64_t interval = kDefaultInterval;
    const std::size_t colon = spec.rfind(':');
    // `dir:interval`; a bare dir keeps the default. (A colon whose tail
    // is not a number is treated as part of the path.)
    if (colon != std::string::npos && colon + 1 < spec.size()) {
        const std::string tail = spec.substr(colon + 1);
        if (tail.find_first_not_of("0123456789") == std::string::npos) {
            dir = spec.substr(0, colon);
            interval = parseU64(tail, "SMTFLEX_CKPT interval");
        }
    }
    if (dir.empty())
        return nullptr;
    if (interval == 0)
        fatal("SMTFLEX_CKPT: snapshot interval must be > 0");
    auto binding = std::make_unique<ProcessBinding>(
        ProcessBinding{SnapshotStore(dir, &gStats), interval});
    inform("ckpt: snapshots in ", dir, " every ", interval, " cycles");
    return binding;
}

} // namespace

const ProcessBinding *
processBinding()
{
    std::lock_guard<std::mutex> lock(gBindingMu);
    if (!gBindingDecided) {
        gBinding = bindingFromSpec(envString("SMTFLEX_CKPT", ""));
        gBindingDecided = true;
    }
    return gBinding.get();
}

void
configureProcess(const std::string &dir, std::uint64_t interval)
{
    std::lock_guard<std::mutex> lock(gBindingMu);
    gBinding = dir.empty()
        ? nullptr
        : bindingFromSpec(dir + ":" + std::to_string(interval));
    gBindingDecided = true;
}

void
configureProcessSpec(const std::string &spec)
{
    std::lock_guard<std::mutex> lock(gBindingMu);
    gBinding = bindingFromSpec(spec);
    gBindingDecided = true;
}

void
resetProcess()
{
    std::lock_guard<std::mutex> lock(gBindingMu);
    gBinding.reset();
    gBindingDecided = false;
}

CkptStats &
processStats()
{
    return gStats;
}

} // namespace ckpt
} // namespace smtflex
