#include "ckpt/journal.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/crc32.h"
#include "common/fault.h"
#include "common/log.h"

namespace smtflex {
namespace ckpt {

namespace {

constexpr std::uint32_t kFrameMagic = 0x4c4a4653; // "SFJL" little-endian

bool
writeAll(int fd, const std::uint8_t *data, std::size_t size)
{
    std::size_t off = 0;
    while (off < size) {
        const ssize_t n = ::write(fd, data + off, size - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

SweepJournal::SweepJournal(std::string path, CkptStats *stats)
    : path_(std::move(path)), stats_(stats)
{
}

bool
SweepJournal::append(const std::vector<Record> &records)
{
    Writer payload;
    payload.u32(static_cast<std::uint32_t>(records.size()));
    for (const Record &rec : records) {
        payload.str(rec.key);
        payload.u32(static_cast<std::uint32_t>(rec.values.size()));
        for (const double v : rec.values)
            payload.f64(v);
    }

    Writer frame;
    frame.u32(kFrameMagic);
    frame.u32(static_cast<std::uint32_t>(payload.size()));
    const std::uint32_t crc =
        crc32(payload.bytes().data(), payload.size());
    std::vector<std::uint8_t> bytes = frame.take();
    bytes.insert(bytes.end(), payload.bytes().begin(),
                 payload.bytes().end());
    Writer tail;
    tail.u32(crc);
    bytes.insert(bytes.end(), tail.bytes().begin(), tail.bytes().end());

    std::size_t to_write = bytes.size();
    if (fault::shouldFire(fault::Site::kCkptWrite)) {
        to_write = static_cast<std::size_t>(
            fault::param(fault::Site::kCkptWrite, bytes.size() / 2));
        if (to_write > bytes.size())
            to_write = bytes.size() / 2;
        warn("ckpt: injected torn journal append (", to_write, " of ",
             bytes.size(), " bytes): ", path_);
    }

    const int fd = ::open(path_.c_str(),
                          O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
        warn("ckpt: open(", path_, ") failed: ", std::strerror(errno));
        return false;
    }
    struct stat st{};
    const bool fresh = ::fstat(fd, &st) == 0 && st.st_size == 0;
    const bool wrote = writeAll(fd, bytes.data(), to_write);
    bool synced = wrote && ::fsync(fd) == 0;
    ::close(fd);
    if (!wrote)
        warn("ckpt: journal append to ", path_,
             " failed: ", std::strerror(errno));
    if (fresh && synced) {
        // A freshly created journal must itself survive power loss.
        const std::size_t slash = path_.rfind('/');
        const std::string dir =
            slash == std::string::npos ? "." : path_.substr(0, slash);
        const int dfd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
        if (dfd >= 0) {
            ::fsync(dfd);
            ::close(dfd);
        }
    }
    const bool ok = wrote && synced && to_write == bytes.size();
    if (ok)
        stats_->journalAppends.fetch_add(1, std::memory_order_relaxed);
    return ok;
}

std::uint64_t
SweepJournal::replay(const std::function<void(const Record &)> &visit)
{
    const int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return 0;
    if (fault::shouldFire(fault::Site::kCkptLoad)) {
        ::close(fd);
        warn("ckpt: injected unreadable journal: ", path_);
        stats_->corruptSkipped.fetch_add(1, std::memory_order_relaxed);
        return 0;
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
        ::close(fd);
        return 0;
    }
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(st.st_size));
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::read(fd, bytes.data() + off, bytes.size() - off);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            break;
        }
        off += static_cast<std::size_t>(n);
    }
    ::close(fd);

    std::uint64_t visited = 0;
    std::size_t pos = 0;
    while (pos + 8 <= off) {
        Reader head(bytes.data() + pos, 8);
        if (head.u32() != kFrameMagic) {
            stats_->corruptSkipped.fetch_add(1, std::memory_order_relaxed);
            warn("ckpt: journal ", path_, ": bad frame magic at offset ",
                 pos, "; ignoring the rest");
            break;
        }
        const std::uint32_t len = head.u32();
        if (pos + 8 + len + 4 > off)
            break; // torn tail: the crash case, silently healed
        const std::uint8_t *payload = bytes.data() + pos + 8;
        Reader tail(payload + len, 4);
        if (tail.u32() != crc32(payload, len)) {
            stats_->corruptSkipped.fetch_add(1, std::memory_order_relaxed);
            warn("ckpt: journal ", path_, ": frame CRC mismatch at offset ",
                 pos, "; ignoring the rest");
            break;
        }
        try {
            Reader r(payload, len);
            const std::uint32_t count = r.u32();
            for (std::uint32_t i = 0; i < count; ++i) {
                Record rec;
                rec.key = r.str();
                const std::uint32_t nv = r.u32();
                rec.values.reserve(nv);
                for (std::uint32_t v = 0; v < nv; ++v)
                    rec.values.push_back(r.f64());
                visit(rec);
                ++visited;
            }
            r.expectEnd();
        } catch (const CorruptSnapshot &e) {
            stats_->corruptSkipped.fetch_add(1, std::memory_order_relaxed);
            warn("ckpt: journal ", path_, ": ", e.what(),
                 "; ignoring the rest");
            break;
        }
        pos += 8 + len + 4;
    }
    stats_->journalReplayed.fetch_add(visited, std::memory_order_relaxed);
    return visited;
}

} // namespace ckpt
} // namespace smtflex
