/**
 * @file
 * smtflex::ckpt — the SweepJournal: an append-only, CRC-framed log of
 * delivered sweep records, fsynced per append, so a coordinator killed
 * with SIGKILL mid-sweep resumes on restart without recomputing a single
 * delivered chunk.
 *
 * Frame layout (little-endian):
 *
 *   u32 magic 'SFJL' | u32 payload length | payload | u32 CRC-32(payload)
 *
 * payload := u32 record count, then per record: str key, u32 value
 * count, f64 values. replay() walks frames until the first torn or
 * corrupt one — a partially written tail (the crash case) silently ends
 * the replay, exactly like ResultCache's torn-line healing; everything
 * before it was fsynced and is trusted via its CRC.
 */

#ifndef SMTFLEX_CKPT_JOURNAL_H
#define SMTFLEX_CKPT_JOURNAL_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ckpt/store.h"

namespace smtflex {
namespace ckpt {

class SweepJournal
{
  public:
    /** One delivered (cache key, row values) record. */
    struct Record
    {
        std::string key;
        std::vector<double> values;
    };

    SweepJournal(std::string path, CkptStats *stats);

    const std::string &path() const { return path_; }

    /**
     * Append one frame holding @p records and fsync it (a false return
     * means the frame may not be durable; the sweep still completes —
     * the journal only loses resumability, never correctness).
     */
    bool append(const std::vector<Record> &records);

    /**
     * Replay every intact frame in order; stops at the first torn or
     * corrupt frame (counted via CkptStats::corruptSkipped when the
     * defect is a CRC/structure failure rather than a clean EOF tail).
     * Returns the number of records visited.
     */
    std::uint64_t replay(const std::function<void(const Record &)> &visit);

  private:
    std::string path_;
    CkptStats *stats_;
};

} // namespace ckpt
} // namespace smtflex

#endif // SMTFLEX_CKPT_JOURNAL_H
