#include "ckpt/snapshot.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/crc32.h"
#include "common/fault.h"
#include "common/log.h"

namespace smtflex {
namespace ckpt {

namespace {

constexpr std::uint32_t kMagic = 0x4b434653; // "SFCK" little-endian

bool
syncFd(int fd, const std::string &what)
{
    if (::fsync(fd) != 0) {
        warn("ckpt: fsync(", what, ") failed: ", std::strerror(errno));
        return false;
    }
    return true;
}

void
syncParentDir(const std::string &file_path)
{
    const std::size_t slash = file_path.rfind('/');
    const std::string dir =
        slash == std::string::npos ? "." : file_path.substr(0, slash);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return; // best effort: some filesystems refuse directory opens
    syncFd(fd, dir);
    ::close(fd);
}

} // namespace

std::vector<std::uint8_t>
encodeSnapshot(const Snapshot &snap)
{
    Writer w;
    w.u32(kMagic);
    w.u32(kSnapshotVersion);
    w.u32(static_cast<std::uint32_t>(snap.kind));
    w.str(snap.key);
    w.u64(snap.cycle);
    w.blob(snap.meta);
    w.blob(snap.payload);
    const std::uint32_t crc = crc32(w.bytes().data(), w.size());
    w.u32(crc);
    return w.take();
}

Snapshot
decodeSnapshot(const std::uint8_t *data, std::size_t size)
{
    if (size < 4)
        throw CorruptSnapshot("ckpt: snapshot shorter than its CRC");
    const std::uint32_t want = crc32(data, size - 4);
    Reader tail(data + size - 4, 4);
    if (tail.u32() != want)
        throw CorruptSnapshot("ckpt: snapshot CRC mismatch");

    Reader r(data, size - 4);
    if (r.u32() != kMagic)
        throw CorruptSnapshot("ckpt: bad snapshot magic");
    if (r.u32() != kSnapshotVersion)
        throw CorruptSnapshot("ckpt: unsupported snapshot version");
    Snapshot snap;
    snap.kind = static_cast<SnapshotKind>(r.u32());
    if (snap.kind != SnapshotKind::kChipRun &&
        snap.kind != SnapshotKind::kSweepJournal)
        throw CorruptSnapshot("ckpt: unknown snapshot kind");
    snap.key = r.str();
    snap.cycle = r.u64();
    snap.meta = r.blob();
    snap.payload = r.blob();
    r.expectEnd();
    return snap;
}

bool
writeSnapshotFile(const std::string &path, const Snapshot &snap)
{
    const std::vector<std::uint8_t> bytes = encodeSnapshot(snap);
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
        warn("ckpt: open(", tmp, ") failed: ", std::strerror(errno));
        return false;
    }

    // The injected failure writes a prefix and still publishes it via
    // rename — exactly the torn file a power cut during a non-atomic
    // writer would leave. Loads must reject it (CRC) and cold-start.
    std::size_t to_write = bytes.size();
    bool torn = false;
    if (fault::shouldFire(fault::Site::kCkptWrite)) {
        to_write = static_cast<std::size_t>(
            fault::param(fault::Site::kCkptWrite, bytes.size() / 2));
        if (to_write > bytes.size())
            to_write = bytes.size() / 2;
        torn = true;
        warn("ckpt: injected torn snapshot write (", to_write, " of ",
             bytes.size(), " bytes): ", path);
    }

    std::size_t off = 0;
    while (off < to_write) {
        const ssize_t n = ::write(fd, bytes.data() + off, to_write - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("ckpt: write(", tmp, ") failed: ", std::strerror(errno));
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    if (!syncFd(fd, tmp)) {
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("ckpt: rename(", tmp, " -> ", path,
             ") failed: ", std::strerror(errno));
        ::unlink(tmp.c_str());
        return false;
    }
    // The rename itself must survive power loss.
    syncParentDir(path);
    return !torn;
}

std::optional<Snapshot>
readSnapshotFile(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return std::nullopt;
    if (fault::shouldFire(fault::Site::kCkptLoad)) {
        ::close(fd);
        warn("ckpt: injected unreadable snapshot: ", path);
        throw CorruptSnapshot("ckpt: injected load failure");
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        return std::nullopt;
    }
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(st.st_size));
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::read(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            return std::nullopt;
        }
        if (n == 0)
            break; // truncated under us; the CRC check rejects it
        off += static_cast<std::size_t>(n);
    }
    ::close(fd);
    return decodeSnapshot(bytes.data(), off);
}

} // namespace ckpt
} // namespace smtflex
