/**
 * @file
 * smtflex::ckpt — the SnapshotStore: a directory of snapshot files keyed
 * by (resume key, cycle), plus the process-wide `SMTFLEX_CKPT=dir[:interval]`
 * binding that turns checkpointing on for every ChipSim run in the
 * process (serve backends, the coordinator, the CLI) with zero behaviour
 * change when unset.
 *
 * File names are `<fnv64(key) hex>-<cycle>.ckpt`; the full key is echoed
 * inside the envelope and validated on load, so a 64-bit hash collision
 * can never resurrect a foreign simulation state. Corrupt or torn files
 * are skipped, counted (CkptStats::corruptSkipped) and surfaced via the
 * serve `stats` op — never fatal, never partially restored.
 */

#ifndef SMTFLEX_CKPT_STORE_H
#define SMTFLEX_CKPT_STORE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "ckpt/snapshot.h"

namespace smtflex {
namespace ckpt {

/** Monotonic ckpt.* counters (referenced by the MetricRegistry). */
struct CkptStats
{
    std::atomic<std::uint64_t> saves{0};
    std::atomic<std::uint64_t> saveBytes{0};
    std::atomic<std::uint64_t> saveFailures{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> corruptSkipped{0};
    std::atomic<std::uint64_t> resumedCycles{0};
    std::atomic<std::uint64_t> resumeMs{0};
    std::atomic<std::uint64_t> journalAppends{0};
    std::atomic<std::uint64_t> journalReplayed{0};

    template <typename F>
    static void forEachCounter(F &&f)
    {
        f("saves", &CkptStats::saves);
        f("save_bytes", &CkptStats::saveBytes);
        f("save_failures", &CkptStats::saveFailures);
        f("hits", &CkptStats::hits);
        f("misses", &CkptStats::misses);
        f("corrupt_skipped", &CkptStats::corruptSkipped);
        f("resumed_cycles", &CkptStats::resumedCycles);
        f("resume_ms", &CkptStats::resumeMs);
        f("journal_appends", &CkptStats::journalAppends);
        f("journal_replayed", &CkptStats::journalReplayed);
    }
};

/** FNV-1a 64-bit hash (snapshot file naming). */
std::uint64_t keyHash64(const std::string &key);

/**
 * A directory of snapshots. All methods are safe to call from multiple
 * threads (the underlying operations are atomic file publishes and
 * independent reads); counters are atomics.
 */
class SnapshotStore
{
  public:
    /** @param dir created (one level) if missing. */
    SnapshotStore(std::string dir, CkptStats *stats);

    const std::string &dir() const { return dir_; }

    /** Persist @p snap as `<hash>-<cycle>.ckpt`; counts saves/failures. */
    bool save(const Snapshot &snap) const;

    /**
     * Best resumable snapshot for @p key: scan the store for this key's
     * files, newest (highest cycle) first, skip corrupt ones (counted),
     * skip echo mismatches, and return the first for which @p eligible
     * says yes. std::nullopt when none qualifies.
     */
    std::optional<Snapshot>
    best(const std::string &key,
         const std::function<bool(const Snapshot &)> &eligible) const;

  private:
    std::string dir_;
    CkptStats *stats_;
};

/** An active process-wide checkpoint configuration. */
struct ProcessBinding
{
    SnapshotStore store;
    /** Snapshot every this many simulated cycles (also the fast-forward
     * clamp grain). */
    std::uint64_t interval = 0;
};

/**
 * The process binding, lazily parsed from `SMTFLEX_CKPT=dir[:interval]`
 * on first call (interval defaults to 1,000,000 cycles). Returns nullptr
 * when checkpointing is off — callers' fast path is one pointer check.
 */
const ProcessBinding *processBinding();

/** Install a binding programmatically (CLI `--ckpt`, tests). Overrides
 * the environment; an empty @p dir turns checkpointing off. */
void configureProcess(const std::string &dir, std::uint64_t interval);

/** Same, from a raw `dir[:interval]` spec (the CLI flag's verbatim
 * value; interval defaults as with the environment variable). */
void configureProcessSpec(const std::string &spec);

/** Drop any binding and re-arm lazy env parsing (tests). */
void resetProcess();

/** The counters every binding (and the journal) reports into. */
CkptStats &processStats();

} // namespace ckpt
} // namespace smtflex

#endif // SMTFLEX_CKPT_STORE_H
