/**
 * @file
 * smtflex::ckpt — bit-exact binary serialization primitives.
 *
 * Writer appends little-endian scalars, raw double bit patterns and
 * length-prefixed strings/blobs to a byte buffer; Reader consumes the
 * same stream strictly: any read past the end, any length prefix that
 * does not fit, throws CorruptSnapshot. A snapshot is therefore either
 * decoded whole or rejected whole — there is no partial restore.
 *
 * Doubles travel as their IEEE-754 bit pattern (std::bit_cast), never
 * through text, so a restored clock accumulator or histogram bucket is
 * the *identical* value, which is what makes resumed runs bit-identical
 * to uninterrupted ones.
 *
 * Header-only so that every model library (cache, dram, uarch, sim) can
 * implement saveState()/loadState() without linking the ckpt library;
 * only the snapshot store / journal code (file I/O, fault seams) lives
 * in smtflex_ckpt.
 */

#ifndef SMTFLEX_CKPT_SERIAL_H
#define SMTFLEX_CKPT_SERIAL_H

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace smtflex {
namespace ckpt {

/** Thrown on any structural defect of a snapshot byte stream: truncated
 * read, oversized length prefix, bad magic/version/CRC, or a count that
 * contradicts the restoring component. Callers treat it as "this
 * snapshot does not exist": skip, count, fall back to cold start. */
class CorruptSnapshot : public std::runtime_error
{
  public:
    explicit CorruptSnapshot(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Append-only little-endian byte-buffer writer. */
class Writer
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(v); }

    void u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void boolean(bool v) { u8(v ? 1 : 0); }

    /** Raw IEEE-754 bit pattern — restores to the identical value. */
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    void str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    void blob(const std::vector<std::uint8_t> &b)
    {
        u32(static_cast<std::uint32_t>(b.size()));
        buf_.insert(buf_.end(), b.begin(), b.end());
    }

    const std::vector<std::uint8_t> &bytes() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Strict sequential reader over a byte range (not owned). */
class Reader
{
  public:
    Reader(const std::uint8_t *data, std::size_t size)
        : p_(data), end_(data + size)
    {
    }

    explicit Reader(const std::vector<std::uint8_t> &buf)
        : Reader(buf.data(), buf.size())
    {
    }

    std::uint8_t u8()
    {
        need(1);
        return *p_++;
    }

    std::uint32_t u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(p_[i]) << (8 * i);
        p_ += 4;
        return v;
    }

    std::uint64_t u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(p_[i]) << (8 * i);
        p_ += 8;
        return v;
    }

    bool boolean()
    {
        const std::uint8_t v = u8();
        if (v > 1)
            throw CorruptSnapshot("ckpt: bad boolean byte");
        return v != 0;
    }

    double f64() { return std::bit_cast<double>(u64()); }

    std::string str()
    {
        const std::uint32_t n = u32();
        need(n);
        std::string s(reinterpret_cast<const char *>(p_), n);
        p_ += n;
        return s;
    }

    std::vector<std::uint8_t> blob()
    {
        const std::uint32_t n = u32();
        need(n);
        std::vector<std::uint8_t> b(p_, p_ + n);
        p_ += n;
        return b;
    }

    /** Read a count and validate it against the fixed capacity the
     * restoring component was constructed with. */
    std::uint32_t count(std::uint64_t expected, const char *what)
    {
        const std::uint32_t n = u32();
        if (n != expected)
            throw CorruptSnapshot(std::string("ckpt: ") + what +
                                  " count mismatch");
        return n;
    }

    std::size_t remaining() const
    {
        return static_cast<std::size_t>(end_ - p_);
    }

    bool atEnd() const { return p_ == end_; }

    /** A component must consume exactly its bytes; trailing garbage means
     * the stream and the code disagree — reject the snapshot. */
    void expectEnd() const
    {
        if (!atEnd())
            throw CorruptSnapshot("ckpt: trailing bytes after payload");
    }

  private:
    void need(std::size_t n) const
    {
        if (static_cast<std::size_t>(end_ - p_) < n)
            throw CorruptSnapshot("ckpt: truncated stream");
    }

    const std::uint8_t *p_;
    const std::uint8_t *end_;
};

/** Serialize a telemetry stats struct through its forEachCounter field
 * list — the single source of field order, so save and load can never
 * disagree. */
template <typename Stats>
void
saveCounters(Writer &w, const Stats &stats)
{
    Stats::forEachCounter(
        [&](const char *, auto member) { w.u64(stats.*member); });
}

template <typename Stats>
void
loadCounters(Reader &r, Stats &stats)
{
    Stats::forEachCounter(
        [&](const char *, auto member) { stats.*member = r.u64(); });
}

} // namespace ckpt
} // namespace smtflex

#endif // SMTFLEX_CKPT_SERIAL_H
