/**
 * @file
 * smtflex::ckpt — the versioned, CRC-tagged snapshot envelope and its
 * atomic file I/O.
 *
 * On-disk layout (all little-endian):
 *
 *   u32 magic   'SFCK'
 *   u32 version (kSnapshotVersion; strict equality on load)
 *   u32 kind    (what the payload serializes; strict equality on load)
 *   str key     (the full resume key, echoed so hash collisions in the
 *                store's file names can never resurrect a foreign state)
 *   u64 cycle   (simulated cycle the state was captured at)
 *   blob meta   (cheap eligibility header, readable without the payload)
 *   blob payload(the component state stream)
 *   u32 crc     CRC-32 over every preceding byte
 *
 * Parsing is strict, cache-v2 style: a snapshot decodes whole or throws
 * CorruptSnapshot — truncation at *any* byte offset, a flipped bit, a
 * wrong version or kind all reject cleanly with zero partial restore.
 *
 * Files are written atomically (tmp + fsync + rename + parent-dir
 * fsync) so a crash mid-save leaves either the old snapshot or none.
 * The `ckpt.write` / `ckpt.load` fault seams make both failure paths
 * testable on demand.
 */

#ifndef SMTFLEX_CKPT_SNAPSHOT_H
#define SMTFLEX_CKPT_SNAPSHOT_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/serial.h"

namespace smtflex {
namespace ckpt {

/** Current envelope version; bumped on any layout change. */
inline constexpr std::uint32_t kSnapshotVersion = 1;

/** What a snapshot's payload serializes. */
enum class SnapshotKind : std::uint32_t {
    kChipRun = 1,      ///< ChipSim::runMultiProgram mid-run state
    kSweepJournal = 2, ///< one sweep-journal entry (framed, not a file)
};

/** A decoded snapshot. */
struct Snapshot
{
    SnapshotKind kind = SnapshotKind::kChipRun;
    std::string key;
    std::uint64_t cycle = 0;
    std::vector<std::uint8_t> meta;
    std::vector<std::uint8_t> payload;
};

/** Serialize @p snap into its byte envelope (CRC included). */
std::vector<std::uint8_t> encodeSnapshot(const Snapshot &snap);

/** Strictly decode an envelope; throws CorruptSnapshot on any defect. */
Snapshot decodeSnapshot(const std::uint8_t *data, std::size_t size);

/**
 * Atomically persist @p snap at @p path. Returns false (after a warn)
 * when any step fails — a failed save never leaves a visible torn file
 * unless the `ckpt.write` fault seam deliberately tears it.
 */
bool writeSnapshotFile(const std::string &path, const Snapshot &snap);

/**
 * Load and decode the snapshot at @p path. Returns std::nullopt when
 * the file does not exist or cannot be read; throws CorruptSnapshot
 * when it exists but fails strict validation (the caller skips and
 * counts it). The `ckpt.load` fault seam turns a healthy file into a
 * CorruptSnapshot throw.
 */
std::optional<Snapshot> readSnapshotFile(const std::string &path);

} // namespace ckpt
} // namespace smtflex

#endif // SMTFLEX_CKPT_SNAPSHOT_H
