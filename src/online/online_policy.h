/**
 * @file
 * Online thread-to-core allocation policies (DESIGN.md §14): turn an
 * OnlineProfile (sampled counters) into a Placement the existing sim
 * entry points consume, re-evaluating with hysteresis and a migration
 * cost model when asked.
 *
 * The policy family mirrors the UPV allocation-policy papers:
 *  - greedy:     rank by sampled big-core affinity, fill big cores first
 *                (no co-schedule awareness);
 *  - pairing:    the oracle's own rank-and-serpentine algorithm
 *                (sched::scheduleByRank) driven by sampled affinity and
 *                sampled memory intensity — complementary threads share
 *                an SMT core;
 *  - hysteresis: pairing re-evaluated over progressively longer sample
 *                epochs; a new placement is only adopted when its
 *                predicted STP beats the incumbent by a damping margin
 *                plus a per-thread migration cost;
 *  - measured:   SYNPA-style sample-and-pick — run one measured quantum
 *                of the whole mix over the decision horizon under each
 *                candidate placement (the naive baseline, greedy and
 *                pairing); a challenger only displaces the incumbent
 *                when it dominates: strictly higher measured STP at no
 *                measured-ANTT cost. Because the baseline leads the
 *                candidate set, the decision never loses either metric
 *                to scheduling naively — isolated-affinity rankings
 *                can, when co-run interference inverts them.
 *
 * Everything is deterministic: samples are deterministic simulations,
 * every sort is stable, and the decision is a pure function of
 * (options, config, workload) — which is what lets the serve layer
 * memoise decisions and the coordinator forward them with byte-identical
 * responses.
 */

#ifndef SMTFLEX_ONLINE_ONLINE_POLICY_H
#define SMTFLEX_ONLINE_ONLINE_POLICY_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "online/online_profiler.h"
#include "sim/chip_config.h"
#include "sim/chip_sim.h"

namespace smtflex {
namespace online {

/** Monotonically increasing online-scheduling counters, registered under
 * `sched.*` (telemetry::attachCounters). */
struct SchedStats
{
    std::atomic<std::uint64_t> decisions{0};
    std::atomic<std::uint64_t> migrations{0};
    std::atomic<std::uint64_t> reclassifications{0};
    std::atomic<std::uint64_t> quantaSampled{0};
    std::atomic<std::uint64_t> samplesRun{0};

    /** The telemetry field list (names are the `sched.*` leaf paths). */
    template <typename F>
    static void forEachCounter(F &&f)
    {
        f("decisions", &SchedStats::decisions);
        f("migrations", &SchedStats::migrations);
        f("reclassifications", &SchedStats::reclassifications);
        f("quanta_sampled", &SchedStats::quantaSampled);
        f("samples_run", &SchedStats::samplesRun);
    }
};

/** A placement policy over sampled profiles. */
class OnlinePolicy
{
  public:
    virtual ~OnlinePolicy() = default;
    virtual const char *name() const = 0;
    virtual Placement place(const ChipConfig &config,
                            const OnlineProfile &profile) const = 0;
};

/** Highest sampled big-core affinity takes the next slot in fill order. */
class GreedyBigFirstPolicy : public OnlinePolicy
{
  public:
    const char *name() const override { return "greedy"; }
    Placement place(const ChipConfig &config,
                    const OnlineProfile &profile) const override;
};

/** The oracle's rank-and-serpentine algorithm on sampled inputs. */
class PairingPolicy : public OnlinePolicy
{
  public:
    const char *name() const override { return "pairing"; }
    Placement place(const ChipConfig &config,
                    const OnlineProfile &profile) const override;
};

/** Valid policy names, canonical order: greedy, pairing, hysteresis,
 * measured. */
const std::vector<std::string> &onlinePolicyNames();

/** True iff @p name is a valid policy name. */
bool isOnlinePolicy(const std::string &name);

/**
 * Predicted system throughput of @p placement under @p profile: each
 * thread contributes its sampled IPC on its core's type, normalised to
 * its sampled big-core IPC, discounted by an SMT/time-sharing factor of
 * 1/(1 + 0.4 (k - 1)) for k threads on the core. A model, not a
 * simulation — it ranks candidate placements for the hysteresis damper
 * and gives the serve op its predicted STP/ANTT.
 */
double predictStp(const ChipConfig &config, const OnlineProfile &profile,
                  const Placement &placement);

/** Predicted average normalised turnaround time (same model). */
double predictAntt(const ChipConfig &config, const OnlineProfile &profile,
                   const Placement &placement);

/** Knobs of a full online scheduling decision. */
struct OnlineOptions
{
    ProfilerOptions profiler;
    ClassifierThresholds thresholds;
    /** greedy | pairing | hysteresis | measured. */
    std::string policy = "pairing";
    /** Hysteresis: sample epochs (budget doubles each epoch up to
     * profiler.sampleBudget); other policies decide in one epoch. */
    std::uint32_t epochs = 3;
    /** Hysteresis: min relative predicted-STP gain to migrate. */
    double hysteresisMargin = 0.02;
    /** Hysteresis: predicted-STP cost per migrated thread. */
    double migrationCostStp = 0.005;
};

/** The product of a decision: the placement plus everything a caller
 * (serve op, study figure, tests) wants to report about how it was
 * reached. */
struct OnlineDecision
{
    Placement placement;
    OnlineProfile profile; ///< final epoch's profile (classes included)
    std::string policy;
    double predictedStp = 0.0;
    double predictedAntt = 0.0;
    std::uint32_t epochs = 0;
    std::uint64_t migrations = 0;
    std::uint64_t reclassifications = 0;
    std::uint64_t quantaSampled = 0;
    std::uint64_t samplesRun = 0;
};

/**
 * The sample -> classify -> place -> re-evaluate loop. Stateless between
 * decide() calls apart from the shared stats sink; safe to call from
 * multiple threads.
 */
class OnlineScheduler
{
  public:
    explicit OnlineScheduler(OnlineOptions options,
                             SchedStats *stats = nullptr);

    const OnlineOptions &options() const { return options_; }

    /** Decide a placement for @p specs on @p config. */
    OnlineDecision decide(const ChipConfig &config,
                          const std::vector<ThreadSpec> &specs) const;

  private:
    OnlineOptions options_;
    SchedStats *stats_;
};

} // namespace online
} // namespace smtflex

#endif // SMTFLEX_ONLINE_ONLINE_POLICY_H
