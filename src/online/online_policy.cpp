#include "online_policy.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/log.h"
#include "sched/scheduler.h"

namespace smtflex {
namespace online {

Placement
GreedyBigFirstPolicy::place(const ChipConfig &config,
                            const OnlineProfile &profile) const
{
    const std::size_t n = profile.threads.size();
    if (n == 0)
        fatal("GreedyBigFirstPolicy: empty profile");
    const std::vector<double> affinity = profile.affinities();
    std::vector<std::size_t> rank(n);
    std::iota(rank.begin(), rank.end(), std::size_t{0});
    std::stable_sort(rank.begin(), rank.end(),
                     [&](std::size_t a, std::size_t b) {
                         return affinity[a] > affinity[b];
                     });
    const auto order = slotFillOrder(config);
    Placement placement;
    placement.entries.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        placement.entries[rank[i]] = order[i % order.size()];
    return placement;
}

Placement
PairingPolicy::place(const ChipConfig &config,
                     const OnlineProfile &profile) const
{
    return scheduleByRank(config, profile.affinities(),
                          profile.memIntensities());
}

const std::vector<std::string> &
onlinePolicyNames()
{
    static const std::vector<std::string> names = {"greedy", "pairing",
                                                   "hysteresis",
                                                   "measured"};
    return names;
}

bool
isOnlinePolicy(const std::string &name)
{
    const auto &names = onlinePolicyNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

namespace {

/** Per-thread predicted progress (normalised to solo big-core speed). */
std::vector<double>
predictedProgress(const ChipConfig &config, const OnlineProfile &profile,
                  const Placement &placement)
{
    const std::size_t n = profile.threads.size();
    if (placement.entries.size() != n)
        fatal("predict: placement has ", placement.entries.size(),
              " entries for ", n, " threads");

    std::vector<std::uint32_t> threads_on_core(config.numCores(), 0);
    for (const auto &entry : placement.entries)
        ++threads_on_core.at(entry.core);

    std::vector<double> progress(n, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
        const auto &entry = placement.entries[t];
        const CoreType type = config.cores[entry.core].type;
        const double type_ipc = profile.threads[t].sample(type).ipc;
        const double big_ipc =
            profile.threads[t].sample(CoreType::kBig).ipc;
        if (big_ipc <= 0.0)
            fatal("predict: ", profile.threads[t].benchmark,
                  " sampled zero big-core IPC");
        // Sharing discount: k threads on one core (SMT contexts or
        // time-sharing) each run at 1/(1 + 0.4 (k - 1)) of solo speed —
        // sublinear because complementary threads overlap stalls.
        const double k = threads_on_core[entry.core];
        const double share = 1.0 / (1.0 + 0.4 * (k - 1.0));
        progress[t] = (type_ipc / big_ipc) * share;
    }
    return progress;
}

/** Measured STP and ANTT of one candidate placement (see
 * measuredQuantum). */
struct MeasuredScore
{
    double stp = 0.0;
    double antt = std::numeric_limits<double>::infinity();
};

/**
 * Measured STP/ANTT of one multiprogram quantum under @p placement:
 * every thread's achieved IPC over the quantum, normalised to its solo
 * big-core IPC — the study's own accounting. A real (deterministic)
 * simulation, unlike predictStp's model — it sees the co-run
 * interference the model cannot. The evaluation quantum is the decision
 * horizon (each spec's own budget), not the short sample quantum:
 * candidate rankings can invert between the two, and the placement has
 * to win over the horizon it will serve.
 */
MeasuredScore
measuredQuantum(const ChipConfig &config,
                const std::vector<ThreadSpec> &specs,
                const Placement &placement,
                const std::vector<double> &solo_big_ipc,
                const ProfilerOptions &options)
{
    ChipSim chip(config);
    const SimResult result =
        chip.runMultiProgram(specs, placement, options.seed);
    MeasuredScore score;
    score.antt = 0.0;
    for (std::size_t t = 0; t < specs.size(); ++t) {
        // An unfinished thread reports zero IPC: the candidate scores
        // zero progress and infinite turnaround — deterministic, and
        // exactly the signal we want.
        const double progress = result.threads[t].ipc() / solo_big_ipc[t];
        score.stp += progress;
        score.antt = progress > 0.0
                         ? score.antt + 1.0 / progress
                         : std::numeric_limits<double>::infinity();
    }
    score.antt /= static_cast<double>(specs.size());
    return score;
}

} // namespace

double
predictStp(const ChipConfig &config, const OnlineProfile &profile,
           const Placement &placement)
{
    const auto progress = predictedProgress(config, profile, placement);
    return std::accumulate(progress.begin(), progress.end(), 0.0);
}

double
predictAntt(const ChipConfig &config, const OnlineProfile &profile,
            const Placement &placement)
{
    const auto progress = predictedProgress(config, profile, placement);
    double sum = 0.0;
    for (const double p : progress) {
        if (p <= 0.0)
            fatal("predictAntt: non-positive predicted progress");
        sum += 1.0 / p;
    }
    return sum / static_cast<double>(progress.size());
}

OnlineScheduler::OnlineScheduler(OnlineOptions options, SchedStats *stats)
    : options_(std::move(options)), stats_(stats)
{
    if (!isOnlinePolicy(options_.policy))
        fatal("OnlineScheduler: unknown policy '", options_.policy,
              "' (valid: greedy, pairing, hysteresis, measured)");
    if (options_.epochs == 0)
        fatal("OnlineScheduler: epochs must be positive");
}

OnlineDecision
OnlineScheduler::decide(const ChipConfig &config,
                        const std::vector<ThreadSpec> &specs) const
{
    OnlineDecision decision;
    decision.policy = options_.policy;

    if (options_.policy != "hysteresis") {
        // One sample epoch at the full budget, then place.
        OnlineProfiler profiler(options_.profiler);
        decision.profile =
            profiler.profileWorkload(config, specs, options_.thresholds);
        decision.samplesRun = profiler.samplesRun();
        decision.quantaSampled = decision.profile.quantaSampled();
        const GreedyBigFirstPolicy greedy;
        const PairingPolicy pairing;
        if (options_.policy == "measured") {
            // Sample-and-pick: one measured quantum of the whole mix per
            // candidate; a challenger only displaces the incumbent when
            // it dominates — strictly higher measured STP at no ANTT
            // cost. The naive baseline leads the candidate list, so the
            // decision can only match or beat scheduling naively, on
            // both metrics.
            const std::vector<Placement> candidates = {
                scheduleNaive(config, specs.size()),
                greedy.place(config, decision.profile),
                pairing.place(config, decision.profile),
            };
            // Normalise the evaluations by solo big-core runs at the
            // same horizon: the candidate ranking then agrees with the
            // study's own STP accounting (a converged sample is
            // bit-identical to the offline isolated run), so the pick
            // holds over the horizon it serves, not just the sample.
            ProfilerOptions horizon = options_.profiler;
            horizon.sampleBudget = specs.front().budget;
            horizon.sampleWarmup = specs.front().warmup;
            OnlineProfiler solo(horizon);
            std::vector<double> solo_big_ipc(specs.size());
            for (std::size_t t = 0; t < specs.size(); ++t) {
                solo_big_ipc[t] =
                    solo.sample(*specs[t].profile, CoreType::kBig).ipc;
                if (solo_big_ipc[t] <= 0.0)
                    fatal("measured: ", specs[t].profile->name,
                          " sampled zero big-core IPC");
            }
            decision.samplesRun += solo.samplesRun();
            MeasuredScore best;
            bool first = true;
            for (const Placement &candidate : candidates) {
                const MeasuredScore score = measuredQuantum(
                    config, specs, candidate, solo_big_ipc,
                    options_.profiler);
                ++decision.samplesRun;
                if (first ||
                    (score.stp > best.stp && score.antt <= best.antt)) {
                    first = false;
                    best = score;
                    decision.placement = candidate;
                }
            }
        } else {
            const OnlinePolicy &policy =
                options_.policy == "greedy"
                    ? static_cast<const OnlinePolicy &>(greedy)
                    : static_cast<const OnlinePolicy &>(pairing);
            decision.placement = policy.place(config, decision.profile);
        }
        decision.epochs = 1;
    } else {
        // Progressive epochs: the sample budget doubles up to the full
        // budget; a candidate placement only displaces the incumbent when
        // its predicted STP clears the hysteresis margin plus the
        // migration bill.
        constexpr InstrCount kMinSampleBudget = 500;
        const std::uint32_t epochs = options_.epochs;
        const PairingPolicy pairing;
        OnlineProfile prev_profile;
        for (std::uint32_t e = 0; e < epochs; ++e) {
            ProfilerOptions per_epoch = options_.profiler;
            per_epoch.sampleBudget =
                std::max<InstrCount>(kMinSampleBudget,
                                     options_.profiler.sampleBudget >>
                                         (epochs - 1 - e));
            OnlineProfiler profiler(per_epoch);
            OnlineProfile profile =
                profiler.profileWorkload(config, specs,
                                         options_.thresholds);
            decision.samplesRun += profiler.samplesRun();
            decision.quantaSampled += profile.quantaSampled();

            const Placement candidate = pairing.place(config, profile);
            if (e == 0) {
                decision.placement = candidate;
            } else {
                for (std::size_t t = 0; t < profile.threads.size(); ++t) {
                    if (profile.threads[t].klass !=
                        prev_profile.threads[t].klass)
                        ++decision.reclassifications;
                }
                std::uint64_t moved = 0;
                for (std::size_t t = 0; t < candidate.entries.size();
                     ++t) {
                    const auto &a = candidate.entries[t];
                    const auto &b = decision.placement.entries[t];
                    if (a.core != b.core || a.slot != b.slot)
                        ++moved;
                }
                if (moved > 0) {
                    const double incumbent =
                        predictStp(config, profile, decision.placement);
                    const double challenger =
                        predictStp(config, profile, candidate);
                    if (challenger >
                        incumbent * (1.0 + options_.hysteresisMargin) +
                            options_.migrationCostStp *
                                static_cast<double>(moved)) {
                        decision.placement = candidate;
                        decision.migrations += moved;
                    }
                }
            }
            prev_profile = std::move(profile);
        }
        decision.profile = std::move(prev_profile);
        decision.epochs = epochs;
    }

    decision.predictedStp =
        predictStp(config, decision.profile, decision.placement);
    decision.predictedAntt =
        predictAntt(config, decision.profile, decision.placement);

    if (stats_) {
        ++stats_->decisions;
        stats_->migrations += decision.migrations;
        stats_->reclassifications += decision.reclassifications;
        stats_->quantaSampled += decision.quantaSampled;
        stats_->samplesRun += decision.samplesRun;
    }
    return decision;
}

} // namespace online
} // namespace smtflex
