#include "online_profile.h"

#include "common/log.h"

namespace smtflex {
namespace online {

const char *
threadClassName(ThreadClass klass)
{
    switch (klass) {
      case ThreadClass::kMemoryBound:
        return "memory";
      case ThreadClass::kMixed:
        return "mixed";
      case ThreadClass::kIlpBound:
        return "ilp";
    }
    return "mixed";
}

bool
ThreadProfile::has(CoreType type) const
{
    return samples.count(type) > 0;
}

const TypeSample &
ThreadProfile::sample(CoreType type) const
{
    const auto it = samples.find(type);
    if (it == samples.end())
        fatal("ThreadProfile: ", benchmark, " was never sampled on ",
              coreTypeTag(type), " cores");
    return it->second;
}

double
ThreadProfile::bigAffinity() const
{
    const double small_ipc = sample(CoreType::kSmall).ipc;
    if (small_ipc <= 0.0)
        fatal("ThreadProfile: ", benchmark, " sampled zero small-core IPC");
    return sample(CoreType::kBig).ipc / small_ipc;
}

double
ThreadProfile::memIntensity() const
{
    return sample(CoreType::kBig).llcMpki;
}

ThreadClass
classify(const ThreadProfile &profile, const ClassifierThresholds &thresholds)
{
    const TypeSample &big = profile.sample(CoreType::kBig);
    if (big.llcMpki >= thresholds.memoryLlcMpki)
        return ThreadClass::kMemoryBound;
    if (big.ipc >= thresholds.ilpIpc)
        return ThreadClass::kIlpBound;
    return ThreadClass::kMixed;
}

std::uint64_t
OnlineProfile::quantaSampled() const
{
    std::uint64_t total = 0;
    for (const auto &thread : threads) {
        for (const auto &[type, sample] : thread.samples)
            total += sample.quanta;
    }
    return total;
}

std::vector<double>
OnlineProfile::affinities() const
{
    std::vector<double> out;
    out.reserve(threads.size());
    for (const auto &thread : threads)
        out.push_back(thread.bigAffinity());
    return out;
}

std::vector<double>
OnlineProfile::memIntensities() const
{
    std::vector<double> out;
    out.reserve(threads.size());
    for (const auto &thread : threads)
        out.push_back(thread.memIntensity());
    return out;
}

} // namespace online
} // namespace smtflex
