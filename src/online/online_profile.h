/**
 * @file
 * smtflex::online — counter-derived thread profiles and the deterministic
 * classifier (DESIGN.md §14).
 *
 * The offline oracle (sched/scheduler.h) steers placement from a table of
 * isolated IPCs plus a *static* memory-intensity formula over the profile
 * structs. The online layer has neither: it sees only what the telemetry
 * spine samples — per-core retired/IPC and cache-miss counters at quantum
 * boundaries. This file defines the counter-space image of the oracle's
 * inputs: a TypeSample per (thread, core type) from short solo sample
 * quanta, a ThreadProfile aggregating them, and a SYNPA-style classifier
 * bucketing threads into memory-bound / mixed / ILP-bound.
 *
 * The memory-intensity proxy is LLC misses per kilo-instruction (DRAM
 * traffic), not private-L2 MPKI: codes whose working set fits the LLC but
 * conflicts in L2 (gobmk-like) show high L2 MPKI while generating no
 * off-chip traffic — exactly the threads SMT co-scheduling wants treated
 * as compute-bound. LLC MPKI ranks the streaming codes (lbm, libquantum,
 * milc) on top and the cache-resident ones at the bottom, matching the
 * oracle's static ranking on the co-schedule decisions that matter.
 */

#ifndef SMTFLEX_ONLINE_ONLINE_PROFILE_H
#define SMTFLEX_ONLINE_ONLINE_PROFILE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "uarch/core_params.h"

namespace smtflex {
namespace online {

/** Classifier buckets, SYNPA-style. */
enum class ThreadClass { kMemoryBound, kMixed, kIlpBound };

/** Stable lowercase tag ("memory" / "mixed" / "ilp") for keys and text. */
const char *threadClassName(ThreadClass klass);

/** Counter readings from one solo sample run on one core type. */
struct TypeSample
{
    double ipc = 0.0;
    /** Private-L2 misses per kilo-instruction. */
    double l2Mpki = 0.0;
    /** LLC misses per kilo-instruction (off-chip traffic — the memory-
     * intensity proxy; see the file comment). */
    double llcMpki = 0.0;
    /** Sample quanta (telemetry series points) the run recorded. */
    std::uint64_t quanta = 0;
};

/** Classifier cut points, in sampled-counter space. Defaults calibrated
 * on the 12 SPEC models at the study's reference budget: the streaming
 * codes sit above 5 LLC misses per kilo-instruction by an order of
 * magnitude, and the compute codes that gain most from a big core retire
 * at 2+ IPC there. */
struct ClassifierThresholds
{
    /** At or above this big-core LLC MPKI a thread is memory-bound. */
    double memoryLlcMpki = 5.0;
    /** At or above this big-core IPC a non-memory thread is ILP-bound. */
    double ilpIpc = 2.0;
};

/** Everything the sample phase learned about one thread. */
struct ThreadProfile
{
    std::string benchmark;
    /** Keyed by core type; always includes kBig and kSmall (the affinity
     * extremes) plus every type the target chip has. */
    std::map<CoreType, TypeSample> samples;
    ThreadClass klass = ThreadClass::kMixed;

    bool has(CoreType type) const;
    /** Sample on @p type; fatal() when the phase never ran it. */
    const TypeSample &sample(CoreType type) const;

    /** Sampled big-core affinity: IPC on big / IPC on small — the online
     * image of OfflineProfile::bigAffinity. */
    double bigAffinity() const;
    /** Sampled memory intensity: big-core LLC MPKI. */
    double memIntensity() const;
};

/** Deterministic classification from sampled counters. */
ThreadClass classify(const ThreadProfile &profile,
                     const ClassifierThresholds &thresholds);

/** The sample phase's product: one profile per workload thread. */
struct OnlineProfile
{
    std::vector<ThreadProfile> threads;

    /** Total sample quanta behind this profile. */
    std::uint64_t quantaSampled() const;
    /** Per-thread bigAffinity(), placement-rank order. */
    std::vector<double> affinities() const;
    /** Per-thread memIntensity(), co-schedule-pairing order. */
    std::vector<double> memIntensities() const;
};

} // namespace online
} // namespace smtflex

#endif // SMTFLEX_ONLINE_ONLINE_PROFILE_H
