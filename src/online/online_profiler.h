/**
 * @file
 * OnlineProfiler — the sample phase of the online scheduler (DESIGN.md
 * §14). Each distinct benchmark of a workload runs a short solo sample
 * quantum on each relevant core type inside ChipSim::runMultiProgram with
 * interval telemetry sampling on; IPC and miss counters are read from the
 * chip's MetricRegistry at quantum boundaries. Fast-forward jumps already
 * clamp to sample boundaries, so sampled runs are bit-identical strict vs
 * fast-forward — and bit-identical to the unsampled runs the offline
 * oracle's table is built from, which is what makes a converged profile
 * reproduce the oracle's placement exactly (the golden test).
 *
 * Samples are memoised per (benchmark, core type) within a profiler, and
 * distinct samples fan out over the smtflex::exec pool with deterministic
 * results for any job count.
 */

#ifndef SMTFLEX_ONLINE_ONLINE_PROFILER_H
#define SMTFLEX_ONLINE_ONLINE_PROFILER_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "online/online_profile.h"
#include "sim/chip_config.h"
#include "sim/chip_sim.h"

namespace smtflex {
namespace online {

/** Knobs of the sample phase. */
struct ProfilerOptions
{
    /** Measured instructions per sample run (short by design; raise to
     * the study budget for a fully converged — oracle-grade — profile). */
    InstrCount sampleBudget = 3'000;
    /** Unmeasured cold-start instructions per sample run. */
    InstrCount sampleWarmup = 1'000;
    /** Telemetry sampling interval (global cycles per quantum). */
    Cycle sampleQuantum = 5'000;
    std::uint64_t seed = 12'345;
    /** Off-chip bandwidth of the sample chips (match the target study). */
    double bandwidthGBps = 8.0;
    /** Event-driven fast-forward in the sample runs (results are
     * bit-identical either way; strict is the differential check). */
    bool fastForward = true;
};

class OnlineProfiler
{
  public:
    explicit OnlineProfiler(ProfilerOptions options = ProfilerOptions());

    const ProfilerOptions &options() const { return options_; }

    /**
     * Core types the sample phase runs each thread on for @p config: the
     * chip's own types (placement prediction needs them) plus kBig and
     * kSmall always (the affinity extremes the ranking is defined over,
     * exactly as the oracle's table is), big-to-small order.
     */
    static std::vector<CoreType> sampledTypes(const ChipConfig &config);

    /** One solo sample run (memoised per profiler instance). */
    TypeSample sample(const BenchmarkProfile &profile, CoreType type);

    /**
     * Profile a workload for @p config: sample every distinct benchmark
     * on every sampled type (fanned out over the exec pool), aggregate
     * per thread, classify. Thread i of the result is specs[i].
     */
    OnlineProfile
    profileWorkload(const ChipConfig &config,
                    const std::vector<ThreadSpec> &specs,
                    const ClassifierThresholds &thresholds =
                        ClassifierThresholds());

    /** Solo sample runs actually executed (memo misses). */
    std::uint64_t samplesRun() const;

  private:
    TypeSample sampleUncached(const BenchmarkProfile &profile,
                              CoreType type) const;

    ProfilerOptions options_;
    mutable std::mutex mutex_;
    std::map<std::pair<std::string, int>, TypeSample> memo_;
    std::uint64_t samplesRun_ = 0;
};

} // namespace online
} // namespace smtflex

#endif // SMTFLEX_ONLINE_ONLINE_PROFILER_H
