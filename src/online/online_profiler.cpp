#include "online_profiler.h"

#include <algorithm>

#include "common/log.h"
#include "exec/experiment_runner.h"

namespace smtflex {
namespace online {

OnlineProfiler::OnlineProfiler(ProfilerOptions options) : options_(options)
{
    if (options_.sampleBudget == 0)
        fatal("OnlineProfiler: sample budget must be positive");
    if (options_.sampleQuantum == 0)
        fatal("OnlineProfiler: sample quantum must be positive");
}

std::vector<CoreType>
OnlineProfiler::sampledTypes(const ChipConfig &config)
{
    std::vector<CoreType> types = {CoreType::kBig, CoreType::kMedium,
                                   CoreType::kSmall};
    types.erase(std::remove_if(
                    types.begin(), types.end(),
                    [&](CoreType type) {
                        if (type == CoreType::kBig ||
                            type == CoreType::kSmall)
                            return false; // affinity extremes: always
                        for (std::uint32_t i = 0; i < config.numCores();
                             ++i) {
                            if (config.cores[i].type == type)
                                return false;
                        }
                        return true;
                    }),
                types.end());
    return types;
}

TypeSample
OnlineProfiler::sampleUncached(const BenchmarkProfile &profile,
                               CoreType type) const
{
    CoreParams core;
    switch (type) {
      case CoreType::kBig:
        core = CoreParams::big();
        break;
      case CoreType::kMedium:
        core = CoreParams::medium();
        break;
      case CoreType::kSmall:
        core = CoreParams::small();
        break;
    }
    ChipConfig solo = ChipConfig::homogeneous(
        std::string("iso_") + coreTypeTag(type), core, 1);
    solo = solo.withBandwidth(options_.bandwidthGBps);

    ChipSim chip(solo);
    chip.setFastForward(options_.fastForward);
    chip.enableSampling(options_.sampleQuantum);
    const std::vector<ThreadSpec> specs = {
        {&profile, options_.sampleBudget, options_.sampleWarmup}};
    Placement placement;
    placement.entries = {{0, 0}};
    const SimResult result =
        chip.runMultiProgram(specs, placement, options_.seed);
    if (!result.threads[0].finished)
        fatal("OnlineProfiler: ", profile.name, " never finished on ",
              coreTypeTag(type));

    TypeSample sample;
    sample.ipc = result.threads[0].ipc();
    const double retired = result.metrics.numeric("core.0.retired");
    if (retired > 0.0) {
        sample.l2Mpki =
            1000.0 * result.metrics.numeric("core.0.l2.misses") / retired;
        sample.llcMpki =
            1000.0 * result.metrics.numeric("llc.misses") / retired;
    }
    if (const auto *series = chip.metrics().findSeries("chip.ipc"))
        sample.quanta = series->size();
    return sample;
}

TypeSample
OnlineProfiler::sample(const BenchmarkProfile &profile, CoreType type)
{
    const std::pair<std::string, int> key = {profile.name,
                                             static_cast<int>(type)};
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = memo_.find(key);
        if (it != memo_.end())
            return it->second;
    }
    const TypeSample fresh = sampleUncached(profile, type);
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = memo_.emplace(key, fresh);
    if (inserted)
        ++samplesRun_;
    return it->second;
}

std::uint64_t
OnlineProfiler::samplesRun() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return samplesRun_;
}

OnlineProfile
OnlineProfiler::profileWorkload(const ChipConfig &config,
                                const std::vector<ThreadSpec> &specs,
                                const ClassifierThresholds &thresholds)
{
    if (specs.empty())
        fatal("OnlineProfiler: no threads to profile");
    for (const auto &spec : specs) {
        if (!spec.profile)
            fatal("OnlineProfiler: thread without profile");
    }

    const std::vector<CoreType> types = sampledTypes(config);

    // Distinct benchmarks in first-appearance order, then one sample task
    // per (benchmark, type): independent solo runs, fanned out over the
    // exec pool with deterministic (index-ordered) results.
    std::vector<const BenchmarkProfile *> distinct;
    for (const auto &spec : specs) {
        const bool seen =
            std::any_of(distinct.begin(), distinct.end(),
                        [&](const BenchmarkProfile *p) {
                            return p->name == spec.profile->name;
                        });
        if (!seen)
            distinct.push_back(spec.profile);
    }
    std::vector<std::pair<const BenchmarkProfile *, CoreType>> tasks;
    for (const BenchmarkProfile *profile : distinct) {
        for (const CoreType type : types)
            tasks.push_back({profile, type});
    }
    exec::ExperimentRunner runner;
    runner.mapItems(tasks, [&](const auto &task) {
        return sample(*task.first, task.second);
    });

    OnlineProfile result;
    result.threads.reserve(specs.size());
    for (const auto &spec : specs) {
        ThreadProfile thread;
        thread.benchmark = spec.profile->name;
        for (const CoreType type : types)
            thread.samples[type] = sample(*spec.profile, type);
        thread.klass = classify(thread, thresholds);
        result.threads.push_back(std::move(thread));
    }
    return result;
}

} // namespace online
} // namespace smtflex
