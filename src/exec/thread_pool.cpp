#include "thread_pool.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/env.h"
#include "common/log.h"

namespace smtflex {
namespace exec {

namespace {

/** Which pool (if any) the current thread is a worker of. */
struct WorkerIdentity
{
    ThreadPool *pool = nullptr;
    std::size_t index = 0;
};

thread_local WorkerIdentity tlsWorker;

#if defined(__linux__)
void
pinThread(std::thread &thread, unsigned cpu)
{
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu % std::max(1u, std::thread::hardware_concurrency()), &set);
    if (pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set))
        warn("ThreadPool: could not pin worker to CPU ", cpu);
}
#else
void
pinThread(std::thread &, unsigned cpu)
{
    warn("ThreadPool: CPU pinning unsupported on this platform (CPU ", cpu,
         ")");
}
#endif

} // namespace

ThreadPool::ThreadPool(unsigned workers, bool pin_threads)
{
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.push_back(std::make_unique<Worker>());
    for (unsigned i = 0; i < workers; ++i) {
        workers_[i]->thread =
            std::thread([this, i] { workerLoop(i); });
        if (pin_threads)
            pinThread(workers_[i]->thread, i);
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(idleMutex_);
        stop_.store(true, std::memory_order_release);
    }
    idleCv_.notify_all();
    for (auto &worker : workers_) {
        if (worker->thread.joinable())
            worker->thread.join();
    }
}

unsigned
ThreadPool::configuredJobs()
{
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned jobs = envU32("SMTFLEX_JOBS", hw);
    if (jobs == 0)
        fatal("SMTFLEX_JOBS: must be >= 1 (1 = serial execution)");
    return jobs;
}

namespace {

std::mutex globalPoolMutex;
std::unique_ptr<ThreadPool> globalPool;

ThreadPool &
makeGlobal(unsigned jobs)
{
    // jobs == 1 means "no extra threads": tasks run inline on the
    // submitting thread, which reproduces serial execution exactly.
    globalPool = std::make_unique<ThreadPool>(
        jobs <= 1 ? 0 : jobs, envFlag("SMTFLEX_PIN", false));
    return *globalPool;
}

} // namespace

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(globalPoolMutex);
    if (!globalPool)
        makeGlobal(configuredJobs());
    return *globalPool;
}

void
ThreadPool::configureGlobal(unsigned jobs)
{
    if (jobs == 0)
        fatal("jobs: must be >= 1 (1 = serial execution)");
    std::lock_guard<std::mutex> lock(globalPoolMutex);
    if (globalPool)
        fatal("configureGlobal: the global pool is already running");
    makeGlobal(jobs);
}

void
ThreadPool::resetGlobalForTesting(unsigned jobs)
{
    std::lock_guard<std::mutex> lock(globalPoolMutex);
    globalPool.reset(); // join old workers before replacing
    makeGlobal(jobs);
}

void
ThreadPool::submit(Task task)
{
    if (workers_.empty()) {
        task.group->execute(task.fn);
        return;
    }
    const WorkerIdentity id = tlsWorker;
    if (id.pool == this) {
        // Spawned from a worker: LIFO on the owner's deque for locality.
        Worker &own = *workers_[id.index];
        std::lock_guard<std::mutex> lock(own.mutex);
        own.deque.push_front(std::move(task));
    } else {
        const std::size_t victim =
            nextWorker_.fetch_add(1, std::memory_order_relaxed) %
            workers_.size();
        Worker &worker = *workers_[victim];
        std::lock_guard<std::mutex> lock(worker.mutex);
        worker.deque.push_back(std::move(task));
    }
    queued_.fetch_add(1, std::memory_order_release);
    {
        // Pairs with the re-check sleeping workers do under idleMutex_:
        // prevents a worker from going to sleep between our queue push
        // and this notification.
        std::lock_guard<std::mutex> lock(idleMutex_);
    }
    idleCv_.notify_one();
}

bool
ThreadPool::popTask(Worker &worker, bool own, const TaskGroup *only,
                    Task &out)
{
    std::lock_guard<std::mutex> lock(worker.mutex);
    auto &dq = worker.deque;
    if (own) {
        for (auto it = dq.begin(); it != dq.end(); ++it) {
            if (only == nullptr || it->group == only) {
                out = std::move(*it);
                dq.erase(it);
                return true;
            }
        }
    } else {
        for (auto it = dq.rbegin(); it != dq.rend(); ++it) {
            if (only == nullptr || it->group == only) {
                out = std::move(*it);
                dq.erase(std::next(it).base());
                return true;
            }
        }
    }
    return false;
}

bool
ThreadPool::runOneTask(const TaskGroup *only)
{
    if (workers_.empty())
        return false;
    Task task;
    bool found = false;
    const WorkerIdentity id = tlsWorker;
    const std::size_t start = id.pool == this ? id.index : 0;
    if (id.pool == this)
        found = popTask(*workers_[start], /*own=*/true, only, task);
    for (std::size_t k = 0; !found && k < workers_.size(); ++k) {
        const std::size_t victim = (start + k) % workers_.size();
        if (id.pool == this && victim == id.index)
            continue;
        found = popTask(*workers_[victim], /*own=*/false, only, task);
    }
    if (!found)
        return false;
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    task.group->execute(task.fn);
    return true;
}

void
ThreadPool::workerLoop(std::size_t index)
{
    tlsWorker = {this, index};
    for (;;) {
        if (runOneTask(nullptr))
            continue;
        std::unique_lock<std::mutex> lock(idleMutex_);
        idleCv_.wait(lock, [this] {
            return stop_.load(std::memory_order_acquire) ||
                   queued_.load(std::memory_order_acquire) > 0;
        });
        if (stop_.load(std::memory_order_acquire))
            break;
    }
    tlsWorker = {};
}

void
TaskGroup::run(std::function<void()> fn)
{
    pending_.fetch_add(1, std::memory_order_acq_rel);
    pool_.submit({std::move(fn), this});
}

void
TaskGroup::execute(const std::function<void()> &fn)
{
    try {
        fn();
    } catch (...) {
        std::lock_guard<std::mutex> lock(errorMutex_);
        if (!error_)
            error_ = std::current_exception();
    }
    {
        // The decrement and notification stay inside one doneMutex_
        // critical section, and wait() only concludes "done" while holding
        // the same mutex. That pairing is what makes it safe for the
        // waiter to destroy the group the moment wait() returns: a waiter
        // can observe pending_ == 0 only after the final decrementer
        // released the mutex, and past that point this thread never
        // touches the group again.
        std::lock_guard<std::mutex> lock(doneMutex_);
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1)
            doneCv_.notify_all();
    }
}

void
TaskGroup::wait()
{
    for (;;) {
        // Help: run this group's queued tasks on the waiting thread. Only
        // this group's tasks are eligible, so a wait can never wander into
        // an unrelated task that waits back on us.
        if (pool_.runOneTask(this))
            continue;
        // Nothing left to help with: any remaining tasks are running on
        // other threads. Completion may only be observed under doneMutex_
        // (see execute()). Sleep until a task finishes, then rescan — a
        // running task may have spawned more work we can help with.
        std::unique_lock<std::mutex> lock(doneMutex_);
        if (pending_.load(std::memory_order_acquire) == 0)
            break;
        doneCv_.wait(lock);
    }
    std::exception_ptr error;
    {
        std::lock_guard<std::mutex> lock(errorMutex_);
        error = error_;
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace exec
} // namespace smtflex
