#include "parallel.h"

#include <algorithm>

namespace smtflex {
namespace exec {

void
parallel_for(std::size_t begin, std::size_t end,
             const std::function<void(std::size_t)> &fn, std::size_t grain,
             ThreadPool *pool)
{
    if (begin >= end)
        return;
    ThreadPool &p = pool ? *pool : ThreadPool::global();
    const std::size_t n = end - begin;
    if (p.workerCount() == 0 || n == 1) {
        for (std::size_t i = begin; i < end; ++i)
            fn(i);
        return;
    }
    if (grain == 0) {
        // Aim for a few chunks per worker so stealing can balance load
        // without drowning in per-task overhead.
        grain = std::max<std::size_t>(1, n / (4 * p.concurrency()));
    }
    TaskGroup group(p);
    for (std::size_t lo = begin; lo < end; lo += grain) {
        const std::size_t hi = std::min(end, lo + grain);
        group.run([&fn, lo, hi] {
            for (std::size_t i = lo; i < hi; ++i)
                fn(i);
        });
    }
    group.wait();
}

void
par_do(const std::function<void()> &left, const std::function<void()> &right,
       ThreadPool *pool)
{
    ThreadPool &p = pool ? *pool : ThreadPool::global();
    if (p.workerCount() == 0) {
        left();
        right();
        return;
    }
    TaskGroup group(p);
    group.run(left);
    // Run the right branch on the calling thread; wait() then helps with
    // the left branch if no worker picked it up.
    right();
    group.wait();
}

} // namespace exec
} // namespace smtflex
