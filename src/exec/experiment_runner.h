/**
 * @file
 * ExperimentRunner: map a batch of independent experiments across the
 * ThreadPool with deterministic result ordering. Result i is whatever
 * fn(i) returned, landed by task index — the output is identical for any
 * worker count or steal order, which is what makes SMTFLEX_JOBS=1 and
 * SMTFLEX_JOBS=N produce byte-identical figure output (the simulations
 * themselves are deterministic functions of their inputs).
 */

#ifndef SMTFLEX_EXEC_EXPERIMENT_RUNNER_H
#define SMTFLEX_EXEC_EXPERIMENT_RUNNER_H

#include <cstddef>
#include <utility>
#include <vector>

#include "exec/parallel.h"
#include "exec/thread_pool.h"

namespace smtflex {
namespace exec {

class ExperimentRunner
{
  public:
    /** Run experiments on @p pool (nullptr = the global pool). */
    explicit ExperimentRunner(ThreadPool *pool = nullptr) : pool_(pool) {}

    /**
     * Evaluate fn(0..n-1) — one task per experiment, so the pool balances
     * even when experiment costs vary wildly — and return the results in
     * index order. R must be default-constructible.
     */
    template <typename Fn>
    auto map(std::size_t n, Fn &&fn)
        -> std::vector<decltype(fn(std::size_t{0}))>
    {
        using R = decltype(fn(std::size_t{0}));
        std::vector<R> results(n);
        parallel_for(
            0, n, [&](std::size_t i) { results[i] = fn(i); },
            /*grain=*/1, pool_);
        return results;
    }

    /** Map over @p items; result i corresponds to items[i]. */
    template <typename T, typename Fn>
    auto mapItems(const std::vector<T> &items, Fn &&fn)
        -> std::vector<decltype(fn(std::declval<const T &>()))>
    {
        return map(items.size(),
                   [&](std::size_t i) { return fn(items[i]); });
    }

  private:
    ThreadPool *pool_;
};

} // namespace exec
} // namespace smtflex

#endif // SMTFLEX_EXEC_EXPERIMENT_RUNNER_H
