/**
 * @file
 * ExperimentRunner: map a batch of independent experiments across the
 * ThreadPool with deterministic result ordering. Result i is whatever
 * fn(i) returned, landed by task index — the output is identical for any
 * worker count or steal order, which is what makes SMTFLEX_JOBS=1 and
 * SMTFLEX_JOBS=N produce byte-identical figure output (the simulations
 * themselves are deterministic functions of their inputs).
 *
 * mapRecovering() adds the self-healing variant used by long sweeps:
 * bounded retry with backoff for transiently failing experiments,
 * quarantine (recorded; the sweep continues) for persistently failing
 * ones, and a watchdog that reports wedged experiments. The exec.throw
 * and exec.stall fault-injection sites (common/fault.h) fire inside its
 * attempt loop, so the recovery machinery is provable under test.
 */

#ifndef SMTFLEX_EXEC_EXPERIMENT_RUNNER_H
#define SMTFLEX_EXEC_EXPERIMENT_RUNNER_H

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/log.h"
#include "exec/parallel.h"
#include "exec/recovery.h"
#include "exec/thread_pool.h"

namespace smtflex {
namespace exec {

class ExperimentRunner
{
  public:
    /** Run experiments on @p pool (nullptr = the global pool). */
    explicit ExperimentRunner(ThreadPool *pool = nullptr) : pool_(pool) {}

    /**
     * Evaluate fn(0..n-1) — one task per experiment, so the pool balances
     * even when experiment costs vary wildly — and return the results in
     * index order. R must be default-constructible. The first exception
     * propagates (see mapRecovering for the fault-tolerant variant).
     */
    template <typename Fn>
    auto map(std::size_t n, Fn &&fn)
        -> std::vector<decltype(fn(std::size_t{0}))>
    {
        using R = decltype(fn(std::size_t{0}));
        std::vector<R> results(n);
        parallel_for(
            0, n, [&](std::size_t i) { results[i] = fn(i); },
            /*grain=*/1, pool_);
        return results;
    }

    /** Map over @p items; result i corresponds to items[i]. */
    template <typename T, typename Fn>
    auto mapItems(const std::vector<T> &items, Fn &&fn)
        -> std::vector<decltype(fn(std::declval<const T &>()))>
    {
        return map(items.size(),
                   [&](std::size_t i) { return fn(items[i]); });
    }

    /**
     * Self-healing map: like map(), but an experiment that throws
     * (FatalError or any std::exception — PanicError still propagates,
     * an internal invariant violation must not be papered over) is
     * retried up to options.maxAttempts times with capped exponential
     * backoff, and quarantined afterwards: its failure is recorded in
     * the returned RecoveredResults and every other experiment still
     * completes. Retried experiments return the value a fault-free run
     * would (fn must be deterministic), so a sweep that recovers from
     * transient faults is byte-identical to an undisturbed one.
     */
    template <typename Fn>
    auto mapRecovering(std::size_t n, Fn &&fn,
                       const RecoveryOptions &options = RecoveryOptions())
        -> RecoveredResults<decltype(fn(std::size_t{0}))>
    {
        using R = decltype(fn(std::size_t{0}));
        RecoveredResults<R> out;
        out.results.resize(n);
        out.ok.assign(n, 0);
        Watchdog watchdog(n, options.watchdogMs);
        std::mutex recordMutex;
        std::uint64_t retries = 0;
        parallel_for(
            0, n,
            [&](std::size_t i) {
                for (unsigned attempt = 1;; ++attempt) {
                    watchdog.beginExperiment(i);
                    try {
                        if (fault::shouldFire(fault::Site::kExecStall))
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(fault::param(
                                    fault::Site::kExecStall, 50)));
                        if (fault::shouldFire(fault::Site::kExecThrow))
                            throw FatalError(
                                "fault: injected experiment failure");
                        out.results[i] = fn(i);
                        watchdog.endExperiment(i);
                        out.ok[i] = 1;
                        return;
                    } catch (const PanicError &) {
                        watchdog.endExperiment(i);
                        throw;
                    } catch (const std::exception &e) {
                        watchdog.endExperiment(i);
                        if (attempt < options.maxAttempts) {
                            std::lock_guard<std::mutex> lock(recordMutex);
                            ++retries;
                        } else {
                            std::lock_guard<std::mutex> lock(recordMutex);
                            out.quarantined.push_back(
                                {i, attempt, e.what()});
                            warn("experiment ", i, " quarantined after ",
                                 attempt, " attempts: ", e.what());
                            return;
                        }
                    }
                    backoffSleep(options, attempt);
                }
            },
            /*grain=*/1, pool_);
        out.retries = retries;
        out.stallsDetected = watchdog.stallsDetected();
        // Deterministic order for reporting regardless of completion
        // order.
        std::sort(out.quarantined.begin(), out.quarantined.end(),
                  [](const ExperimentFailure &a, const ExperimentFailure &b) {
                      return a.index < b.index;
                  });
        return out;
    }

    /** mapRecovering over @p items; result i corresponds to items[i]. */
    template <typename T, typename Fn>
    auto mapItemsRecovering(const std::vector<T> &items, Fn &&fn,
                            const RecoveryOptions &options =
                                RecoveryOptions())
        -> RecoveredResults<decltype(fn(std::declval<const T &>()))>
    {
        return mapRecovering(
            items.size(), [&](std::size_t i) { return fn(items[i]); },
            options);
    }

  private:
    ThreadPool *pool_;
};

} // namespace exec
} // namespace smtflex

#endif // SMTFLEX_EXEC_EXPERIMENT_RUNNER_H
