#include "recovery.h"

#include <algorithm>
#include <chrono>

#include "common/log.h"

namespace smtflex {
namespace exec {

namespace {

std::uint64_t
nowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

constexpr std::uint64_t kReported = ~std::uint64_t{0};

} // namespace

Watchdog::Watchdog(std::size_t n, std::uint64_t deadline_ms)
    : deadlineMs_(deadline_ms), startMs_(n)
{
    for (auto &slot : startMs_)
        slot.store(0, std::memory_order_relaxed);
    if (deadlineMs_ > 0 && n > 0)
        monitor_ = std::thread([this] { monitorLoop(); });
}

Watchdog::~Watchdog()
{
    if (monitor_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        cv_.notify_all();
        monitor_.join();
    }
}

void
Watchdog::beginExperiment(std::size_t index)
{
    if (deadlineMs_ == 0)
        return;
    // nowMs() could in principle be 0 on some clocks; 1 keeps "idle"
    // distinguishable.
    startMs_[index].store(std::max<std::uint64_t>(1, nowMs()),
                          std::memory_order_release);
}

void
Watchdog::endExperiment(std::size_t index)
{
    if (deadlineMs_ == 0)
        return;
    startMs_[index].store(0, std::memory_order_release);
}

void
Watchdog::monitorLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    // Poll at a quarter of the deadline so a stall is reported at most
    // ~1.25 deadlines after it began.
    const auto period =
        std::chrono::milliseconds(std::max<std::uint64_t>(
            1, deadlineMs_ / 4));
    while (!cv_.wait_for(lock, period, [this] { return stopping_; })) {
        const std::uint64_t now = nowMs();
        for (std::size_t i = 0; i < startMs_.size(); ++i) {
            std::uint64_t started =
                startMs_[i].load(std::memory_order_acquire);
            if (started == 0 || started == kReported)
                continue;
            if (now - started < deadlineMs_)
                continue;
            // Report once per attempt: only the first observer flips the
            // slot to the reported marker.
            if (startMs_[i].compare_exchange_strong(
                    started, kReported, std::memory_order_acq_rel)) {
                stalls_.fetch_add(1, std::memory_order_relaxed);
                warn("watchdog: experiment ", i, " running for ",
                     now - started, " ms (deadline ", deadlineMs_,
                     " ms); it blocks a worker until it returns");
            }
        }
    }
}

void
backoffSleep(const RecoveryOptions &options, unsigned attempt)
{
    std::uint64_t delay = options.backoffBaseMs;
    for (unsigned i = 1; i < attempt && delay < options.backoffCapMs; ++i)
        delay *= 2;
    delay = std::min(delay, options.backoffCapMs);
    if (delay > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
}

} // namespace exec
} // namespace smtflex
