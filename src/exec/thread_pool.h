/**
 * @file
 * Host-parallel execution of independent experiments (smtflex::exec).
 *
 * The design-space sweeps behind the paper's figures are thousands of
 * independent simulations; this pool spreads them across host cores. It is
 * a work-stealing pool: every worker owns a deque, pushes work it spawns to
 * the front (LIFO, for locality), pops its own front, and steals from the
 * back of other workers' deques when idle. Nested parallelism is the
 * common case here — a bench driver fans out over designs, each design
 * fans out over workloads — so TaskGroup::wait() *helps*: a thread waiting
 * on a group executes that group's queued tasks itself instead of
 * blocking. Helping is restricted to the waited-on group, which keeps
 * waits acyclic (no re-entrant deadlocks through memoised engine state).
 *
 * Worker count comes from SMTFLEX_JOBS (default: hardware concurrency).
 * SMTFLEX_JOBS=1 builds a pool with no worker threads: every task runs
 * inline at submission, byte-for-byte reproducing serial execution.
 * SMTFLEX_PIN=1 additionally pins worker i to CPU i (Linux only).
 */

#ifndef SMTFLEX_EXEC_THREAD_POOL_H
#define SMTFLEX_EXEC_THREAD_POOL_H

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace smtflex {
namespace exec {

class TaskGroup;

/**
 * Work-stealing pool of @p workers threads. A pool with zero workers runs
 * every submitted task inline on the submitting thread (the serial mode
 * selected by SMTFLEX_JOBS=1).
 */
class ThreadPool
{
  public:
    /** Spawn @p workers threads; optionally pin worker i to CPU i. */
    explicit ThreadPool(unsigned workers, bool pin_threads = false);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads (0 = inline/serial execution). */
    unsigned workerCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Degree of parallelism this pool provides (>= 1). */
    unsigned concurrency() const { return std::max(1u, workerCount()); }

    /**
     * The process-wide pool, built on first use from SMTFLEX_JOBS /
     * SMTFLEX_PIN. Thread-safe.
     */
    static ThreadPool &global();

    /** Worker count SMTFLEX_JOBS requests (>= 1; 1 = serial). */
    static unsigned configuredJobs();

    /**
     * Build the global pool with @p jobs workers instead of the
     * SMTFLEX_JOBS default (the CLI's `serve --jobs N`). Must run before
     * anything touches global(); fatal() once the pool exists — replacing
     * a pool that may have tasks in flight is not supported.
     */
    static void configureGlobal(unsigned jobs);

    /**
     * Replace the global pool (tests only: lets one process compare
     * SMTFLEX_JOBS=1 vs =N behaviour). Must not race with tasks in
     * flight. @p jobs follows SMTFLEX_JOBS semantics: 1 = serial.
     */
    static void resetGlobalForTesting(unsigned jobs);

  private:
    friend class TaskGroup;

    struct Task
    {
        std::function<void()> fn;
        TaskGroup *group;
    };

    struct Worker
    {
        std::mutex mutex;
        std::deque<Task> deque;
        std::thread thread;
    };

    /** Enqueue @p task; runs it inline when the pool has no workers. */
    void submit(Task task);

    /**
     * Find and run one queued task, preferring the current worker's own
     * deque (front) and stealing from other deques (back) otherwise. When
     * @p only is non-null, only tasks of that group are eligible.
     * @return whether a task was run.
     */
    bool runOneTask(const TaskGroup *only);

    bool popTask(Worker &worker, bool own, const TaskGroup *only,
                 Task &out);
    void workerLoop(std::size_t index);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::atomic<std::size_t> nextWorker_{0};
    std::atomic<bool> stop_{false};
    std::mutex idleMutex_;
    std::condition_variable idleCv_;
    std::atomic<std::size_t> queued_{0};
};

/**
 * A batch of tasks whose completion can be awaited. Submit with run(),
 * then wait(); run() must not be called again after wait() returns. The
 * first exception thrown by a task is captured and rethrown from wait().
 */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool &pool) : pool_(pool) {}

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Submit @p fn as one task of this group. */
    void run(std::function<void()> fn);

    /**
     * Block until every task of the group finished, executing the group's
     * queued tasks on this thread while waiting. Rethrows the first task
     * exception.
     */
    void wait();

  private:
    friend class ThreadPool;

    void execute(const std::function<void()> &fn);

    ThreadPool &pool_;
    std::atomic<std::size_t> pending_{0};
    std::mutex doneMutex_;
    std::condition_variable doneCv_;
    std::mutex errorMutex_;
    std::exception_ptr error_;
};

} // namespace exec
} // namespace smtflex

#endif // SMTFLEX_EXEC_THREAD_POOL_H
