/**
 * @file
 * Failure-recovery helpers for the experiment engine: retry/backoff
 * policy, quarantine records and the per-experiment watchdog that
 * detects wedged experiments. Used by ExperimentRunner::mapRecovering
 * (see experiment_runner.h) to make long sweeps self-healing — a
 * transiently failing experiment is retried with backoff, a persistently
 * failing one is quarantined (recorded; the sweep continues), and a
 * stalled one is detected and reported while it blocks a worker.
 */

#ifndef SMTFLEX_EXEC_RECOVERY_H
#define SMTFLEX_EXEC_RECOVERY_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace smtflex {
namespace exec {

/** Retry-and-backoff policy of one mapRecovering call. */
struct RecoveryOptions
{
    /** Total tries per experiment (first try included). After the last
     * failure the experiment is quarantined. */
    unsigned maxAttempts = 3;
    /** Sleep before retry k is backoffBaseMs << (k-1), capped. */
    std::uint64_t backoffBaseMs = 1;
    std::uint64_t backoffCapMs = 64;
    /** An experiment running longer than this is reported as stalled
     * (it cannot be safely killed in-process, but it is detected,
     * counted and named). 0 disables the watchdog. */
    std::uint64_t watchdogMs = 0;
};

/** One quarantined experiment: which, why, after how many tries. */
struct ExperimentFailure
{
    std::size_t index = 0;
    unsigned attempts = 0;
    std::string error;
};

/** Outcome of a recovering map over n experiments. */
template <typename R>
struct RecoveredResults
{
    /** results[i] is fn(i)'s value; default-constructed when i was
     * quarantined (check ok[i]). */
    std::vector<R> results;
    std::vector<std::uint8_t> ok; ///< per-index success flag
    std::vector<ExperimentFailure> quarantined;
    std::uint64_t retries = 0;        ///< extra attempts that ran
    std::uint64_t stallsDetected = 0; ///< watchdog reports

    bool allOk() const { return quarantined.empty(); }
};

/**
 * Watches a batch of experiments for stalls: workers mark start/finish
 * per index, and a monitor thread reports (via warn() and a counter) any
 * experiment still running past the deadline. Detection only — a wedged
 * computation cannot be cancelled safely in-process, but it is named
 * while it blocks a worker instead of hanging the sweep silently.
 */
class Watchdog
{
  public:
    /** Start watching @p n slots; @p deadline_ms == 0 disables. */
    Watchdog(std::size_t n, std::uint64_t deadline_ms);
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /** Worker hooks around one attempt of experiment @p index. */
    void beginExperiment(std::size_t index);
    void endExperiment(std::size_t index);

    /** Experiments reported as exceeding the deadline so far. */
    std::uint64_t stallsDetected() const
    {
        return stalls_.load(std::memory_order_relaxed);
    }

  private:
    void monitorLoop();

    std::uint64_t deadlineMs_;
    /** Start time of the running attempt in steady-clock ms, 0 = idle,
     * -1 (max) = already reported. */
    std::vector<std::atomic<std::uint64_t>> startMs_;
    std::atomic<std::uint64_t> stalls_{0};
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    std::thread monitor_;
};

/** Deterministic capped exponential backoff sleep before retry
 * @p attempt (1-based). */
void backoffSleep(const RecoveryOptions &options, unsigned attempt);

} // namespace exec
} // namespace smtflex

#endif // SMTFLEX_EXEC_RECOVERY_H
