/**
 * @file
 * Structured parallel primitives over the work-stealing ThreadPool:
 * parallel_for over an index range and par_do for two-way forks. Both
 * block until the work completes and rethrow the first task exception,
 * so call sites read like their serial equivalents. On a pool without
 * workers (SMTFLEX_JOBS=1) they degrade to plain loops/calls.
 */

#ifndef SMTFLEX_EXEC_PARALLEL_H
#define SMTFLEX_EXEC_PARALLEL_H

#include <cstddef>
#include <functional>

#include "exec/thread_pool.h"

namespace smtflex {
namespace exec {

/**
 * Run fn(i) for every i in [begin, end). Iterations are grouped into
 * chunks of @p grain (0 = pick automatically from the pool width) and
 * executed on @p pool (nullptr = the global pool). Iteration order inside
 * a chunk is ascending; chunks run in any order, so the body must only
 * touch per-index state.
 */
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)> &fn,
                  std::size_t grain = 0, ThreadPool *pool = nullptr);

/** Run two independent thunks, potentially in parallel. */
void par_do(const std::function<void()> &left,
            const std::function<void()> &right, ThreadPool *pool = nullptr);

} // namespace exec
} // namespace smtflex

#endif // SMTFLEX_EXEC_PARALLEL_H
