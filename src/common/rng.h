/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic decision in smtflex (trace synthesis, workload sampling,
 * load imbalance, ...) draws from an explicitly seeded Rng so that any
 * simulation is exactly reproducible. The generator is xoshiro256**, which is
 * fast, passes BigCrush, and has a cheap jump-free substream construction via
 * SplitMix64 seeding.
 */

#ifndef SMTFLEX_COMMON_RNG_H
#define SMTFLEX_COMMON_RNG_H

#include <array>
#include <cstdint>

namespace smtflex {

/**
 * xoshiro256** pseudo-random generator with convenience distributions.
 *
 * Substreams: Rng(seed, stream) produces independent sequences for different
 * stream ids under the same seed, which smtflex uses to give every simulated
 * thread its own generator.
 */
class Rng
{
  public:
    /** Construct from a seed and an optional substream identifier. */
    explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [0, bound) (bound > 0). */
    std::uint64_t nextRange(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive (lo <= hi). */
    std::int64_t nextInt(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial: true with probability @p p. */
    bool nextBool(double p);

    /**
     * Geometric distribution over {1, 2, ...} with given mean (mean >= 1).
     * Used for dependency distances and basic-block lengths.
     */
    std::uint32_t nextGeometric(double mean);

    /** Standard normal via Box-Muller (deterministic, no cached spare). */
    double nextGaussian();

    /** Lognormal with E[X] = mean and coefficient-of-variation @p cv. */
    double nextLognormal(double mean, double cv);

    /** The raw xoshiro256** state, for checkpoint/restore: a generator
     * with setState(other.state()) continues other's exact sequence. */
    std::array<std::uint64_t, 4> state() const
    {
        return {s_[0], s_[1], s_[2], s_[3]};
    }
    void setState(const std::array<std::uint64_t, 4> &s)
    {
        for (int i = 0; i < 4; ++i)
            s_[i] = s[i];
    }

  private:
    std::uint64_t s_[4];
};

} // namespace smtflex

#endif // SMTFLEX_COMMON_RNG_H
