/**
 * @file
 * smtflex::fault — deterministic, env-configured fault injection.
 *
 * Long campaigns treat interruption and partial progress as the normal
 * case; this module makes the failure paths *provable* by letting tests
 * (and operators) make I/O, sockets and workers fail on demand. Seams are
 * threaded through the three layers that talk to the outside world:
 * ResultCache file I/O, the serve socket loops and the exec workers. Each
 * seam asks shouldFire(Site) before the real operation and, when told to,
 * fails the way the real world would (a torn write, a 1-byte read, a
 * thrown experiment).
 *
 * Configuration grammar (SMTFLEX_FAULT, or fault::configure in tests):
 *
 *   spec      := site-spec (',' site-spec)*
 *   site-spec := site (':' kv (';' kv)*)?
 *   kv        := 'p' '=' float       fire probability     (default 1.0)
 *              | 'seed' '=' u64      decision stream seed (default 1)
 *              | 'after' '=' u64     ops passed through before arming
 *              | 'limit' '=' u64     max fires, 0 = unlimited
 *              | 'param' '=' u64     site-specific magnitude (stall ms,
 *                                    short-op byte clamp)
 *
 *   SMTFLEX_FAULT="io.write:p=0.01;seed=42,net.short_read:p=0.05"
 *
 * Determinism: the k-th decision at a site is a pure function of
 * (seed, site, k) — a counting hash, no shared RNG state — so a
 * single-threaded run replays exactly, and a multi-threaded run makes the
 * same decision sequence in per-site arrival order. Malformed specs are
 * fatal() naming the offending token.
 *
 * Overhead: with no site armed, shouldFire() is one relaxed atomic load
 * and a compare; nothing else is touched.
 */

#ifndef SMTFLEX_COMMON_FAULT_H
#define SMTFLEX_COMMON_FAULT_H

#include <atomic>
#include <cstdint>
#include <string>

namespace smtflex {
namespace fault {

/** Injection seams. Names on the wire: "io.write", "net.short_read", ... */
enum class Site : unsigned {
    kIoWrite,      ///< ResultCache record append: torn (prefix-only) write
    kIoFsync,      ///< ResultCache fsync/flush reports failure
    kIoLoad,       ///< ResultCache segment load behaves as unreadable
    kNetShortRead, ///< socket read clamped to `param` bytes (default 1)
    kNetShortWrite,///< socket write clamped to `param` bytes (default 1)
    kNetEagain,    ///< socket op behaves as EAGAIN (retried later)
    kNetDisconnect,///< connection torn down mid-frame
    kExecThrow,    ///< experiment throws before running
    kExecStall,    ///< experiment stalls `param` ms (default 50) first
    kCkptWrite,    ///< snapshot/journal write torn at `param` bytes
    kCkptLoad,     ///< snapshot/journal read behaves as corrupt
    kCount
};

/** Wire name of @p site ("io.write", ...). */
const char *siteName(Site site);

/**
 * Replace the whole configuration with @p spec (see the grammar above).
 * The empty string disarms every site. fatal() on malformed specs.
 * Counters of reconfigured sites restart from zero.
 */
void configure(const std::string &spec);

/** Disarm every site and zero all counters. */
void reset();

/** Fires so far at @p site (for tests and stats reporting). */
std::uint64_t fires(Site site);

/** Total ops observed at @p site (fired or not). */
std::uint64_t ops(Site site);

/** The site's configured `param`, or @p fallback when unset/unarmed. */
std::uint64_t param(Site site, std::uint64_t fallback);

namespace detail {

/** Tri-state so the first shouldFire() lazily reads SMTFLEX_FAULT. */
enum State : int { kUninitialised = 0, kDisarmed = 1, kArmed = 2 };
extern std::atomic<int> gState;

bool shouldFireSlow(Site site);

} // namespace detail

/**
 * The seam: true when the configured fault at @p site fires for this
 * operation. Near-zero cost when injection is disabled.
 */
inline bool
shouldFire(Site site)
{
    const int state = detail::gState.load(std::memory_order_acquire);
    if (state == detail::kDisarmed)
        return false;
    return detail::shouldFireSlow(site);
}

} // namespace fault
} // namespace smtflex

#endif // SMTFLEX_COMMON_FAULT_H
