#include "stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "log.h"
#include "rng.h"

namespace smtflex {

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
harmonicMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double inv_sum = 0.0;
    for (double v : values) {
        assert(v > 0.0);
        inv_sum += 1.0 / v;
    }
    return static_cast<double>(values.size()) / inv_sum;
}

double
weightedArithmeticMean(const std::vector<double> &values,
                       const std::vector<double> &weights)
{
    assert(values.size() == weights.size());
    double sum = 0.0, wsum = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        sum += values[i] * weights[i];
        wsum += weights[i];
    }
    return wsum > 0.0 ? sum / wsum : 0.0;
}

double
weightedHarmonicMean(const std::vector<double> &values,
                     const std::vector<double> &weights)
{
    assert(values.size() == weights.size());
    double inv_sum = 0.0, wsum = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (weights[i] <= 0.0)
            continue;
        assert(values[i] > 0.0);
        inv_sum += weights[i] / values[i];
        wsum += weights[i];
    }
    return inv_sum > 0.0 ? wsum / inv_sum : 0.0;
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        assert(v > 0.0);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(std::size_t max_value) : buckets_(max_value + 1, 0.0)
{
}

void
Histogram::add(std::size_t value, double weight)
{
    if (value >= buckets_.size())
        value = buckets_.size() - 1;
    buckets_[value] += weight;
    total_ += weight;
}

double
Histogram::fraction(std::size_t value) const
{
    if (total_ <= 0.0 || value >= buckets_.size())
        return 0.0;
    return buckets_[value] / total_;
}

double
Histogram::weight(std::size_t value) const
{
    return value < buckets_.size() ? buckets_[value] : 0.0;
}

DiscreteDistribution::DiscreteDistribution(std::vector<double> weights)
{
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            fatal("DiscreteDistribution: negative weight");
        total += w;
    }
    if (total <= 0.0)
        fatal("DiscreteDistribution: all weights are zero");
    probs_.reserve(weights.size());
    cdf_.reserve(weights.size());
    double running = 0.0;
    for (double w : weights) {
        const double p = w / total;
        probs_.push_back(p);
        running += p;
        cdf_.push_back(running);
    }
    cdf_.back() = 1.0; // guard against rounding
}

double
DiscreteDistribution::probability(std::size_t value) const
{
    if (value < 1 || value > probs_.size())
        return 0.0;
    return probs_[value - 1];
}

std::size_t
DiscreteDistribution::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double
DiscreteDistribution::mean() const
{
    double m = 0.0;
    for (std::size_t i = 0; i < probs_.size(); ++i)
        m += probs_[i] * static_cast<double>(i + 1);
    return m;
}

DiscreteDistribution
DiscreteDistribution::mirrored() const
{
    std::vector<double> rev(probs_.rbegin(), probs_.rend());
    return DiscreteDistribution(std::move(rev));
}

} // namespace smtflex
