/**
 * @file
 * Minimal logging/error helpers in the gem5 spirit.
 *
 * fatal()  - the condition is the user's fault (bad configuration); exits.
 * panic()  - the condition is an smtflex bug; aborts.
 * warn()   - something is questionable but the simulation continues.
 * inform() - plain status output.
 */

#ifndef SMTFLEX_COMMON_LOG_H
#define SMTFLEX_COMMON_LOG_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace smtflex {

/** Thrown by fatal(): a user-caused error (bad configuration/arguments). */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Thrown by panic(): an smtflex-internal invariant violation. */
class PanicError : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

/** Severity used by the sink, mostly for testing/filtering. */
enum class LogLevel { kInform, kWarn, kFatal, kPanic };

/**
 * Redirectable log sink. Tests install their own sink to capture messages;
 * the default sink writes to stderr and terminates on kFatal/kPanic.
 */
using LogSink = void (*)(LogLevel, const std::string &);

/** Install a log sink; returns the previous one. Pass nullptr to restore
 * the default. */
LogSink setLogSink(LogSink sink);

/**
 * Emit a message at @p level through the current sink. For kFatal the
 * message is additionally thrown as FatalError; for kPanic as PanicError
 * (the sink runs first, so messages are never lost).
 */
void logMessage(LogLevel level, const std::string &msg);

namespace detail {

inline void
format(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
format(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    format(os, rest...);
}

} // namespace detail

/** Build a message from streamable pieces and log it at @p level. */
template <typename... Args>
void
logAt(LogLevel level, const Args &...args)
{
    std::ostringstream os;
    detail::format(os, args...);
    logMessage(level, os.str());
}

/** User error: report through the sink, then throw FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    logAt(LogLevel::kFatal, args...);
    // logAt throws for kFatal; this is unreachable but keeps [[noreturn]]
    // provable for the compiler.
    throw FatalError("fatal");
}

/** Internal invariant violation: report, then throw PanicError. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    logAt(LogLevel::kPanic, args...);
    throw PanicError("panic");
}

/** Non-fatal diagnostic. */
template <typename... Args>
void
warn(const Args &...args)
{
    logAt(LogLevel::kWarn, args...);
}

/** Plain status message. */
template <typename... Args>
void
inform(const Args &...args)
{
    logAt(LogLevel::kInform, args...);
}

} // namespace smtflex

#endif // SMTFLEX_COMMON_LOG_H
