/**
 * @file
 * Small statistics helpers used across smtflex: means, histograms, and
 * discrete probability distributions (thread-count distributions in the
 * paper's Section 4.2).
 */

#ifndef SMTFLEX_COMMON_STATS_H
#define SMTFLEX_COMMON_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace smtflex {

class Rng;

/** Arithmetic mean of @p values (0 for empty input). */
double arithmeticMean(const std::vector<double> &values);

/**
 * Harmonic mean of @p values. The paper uses the harmonic mean to average
 * STP, which is a rate metric. All values must be > 0.
 */
double harmonicMean(const std::vector<double> &values);

/** Weighted arithmetic mean; weights need not be normalised. */
double weightedArithmeticMean(const std::vector<double> &values,
                              const std::vector<double> &weights);

/** Weighted harmonic mean; values must be > 0, weights >= 0. */
double weightedHarmonicMean(const std::vector<double> &values,
                            const std::vector<double> &weights);

/** Geometric mean of positive @p values. */
double geometricMean(const std::vector<double> &values);

/**
 * Streaming accumulator for min/max/mean/variance (Welford).
 */
class RunningStat
{
  public:
    /** Add one observation. */
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Integer-bucket histogram with weighted samples, e.g. "cycles spent with k
 * active threads" (paper Fig. 1).
 */
class Histogram
{
  public:
    /** Construct with buckets 0..max_value inclusive. */
    explicit Histogram(std::size_t max_value);

    /** Add @p weight to bucket @p value (values beyond the top bucket are
     * clamped into it). */
    void add(std::size_t value, double weight = 1.0);

    /** Total accumulated weight. */
    double total() const { return total_; }

    /** Fraction of total weight in bucket @p value (0 if total is 0). */
    double fraction(std::size_t value) const;

    /** Raw weight in bucket @p value. */
    double weight(std::size_t value) const;

    std::size_t numBuckets() const { return buckets_.size(); }

    /** Raw bucket weights, for checkpoint/restore. */
    const std::vector<double> &rawBuckets() const { return buckets_; }

    /** Restore from rawBuckets()/total() of an identically sized
     * histogram (bit-exact: the doubles travel as raw values). The
     * bucket count must match this histogram's — callers validate it
     * against the snapshot before restoring. */
    void restore(const std::vector<double> &buckets, double total)
    {
        const std::size_t n = buckets_.size();
        buckets_ = buckets;
        buckets_.resize(n, 0.0);
        total_ = total;
    }

  private:
    std::vector<double> buckets_;
    double total_ = 0.0;
};

/**
 * Discrete probability distribution over 1..N (e.g. active thread counts).
 * Probabilities are normalised on construction.
 */
class DiscreteDistribution
{
  public:
    /**
     * Construct from unnormalised weights; weights[i] is the weight of
     * outcome i+1. At least one weight must be positive.
     */
    explicit DiscreteDistribution(std::vector<double> weights);

    /** Number of outcomes N (outcomes are 1..N). */
    std::size_t size() const { return probs_.size(); }

    /** Probability of outcome @p value (1-based). */
    double probability(std::size_t value) const;

    /** Sample an outcome in 1..N. */
    std::size_t sample(Rng &rng) const;

    /** Expected value. */
    double mean() const;

    /**
     * The same distribution mirrored around the centre: outcome k gets the
     * probability of outcome N+1-k (the paper's "mirrored datacenter").
     */
    DiscreteDistribution mirrored() const;

  private:
    std::vector<double> probs_;
    std::vector<double> cdf_;
};

} // namespace smtflex

#endif // SMTFLEX_COMMON_STATS_H
