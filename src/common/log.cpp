#include "log.h"

#include <cstdio>
#include <cstdlib>

namespace smtflex {

namespace {

void
defaultSink(LogLevel level, const std::string &msg)
{
    const char *prefix = "";
    switch (level) {
      case LogLevel::kInform:
        prefix = "info";
        break;
      case LogLevel::kWarn:
        prefix = "warn";
        break;
      case LogLevel::kFatal:
        prefix = "fatal";
        break;
      case LogLevel::kPanic:
        prefix = "panic";
        break;
    }
    std::fprintf(stderr, "smtflex: %s: %s\n", prefix, msg.c_str());
}

LogSink currentSink = nullptr;

} // namespace

LogSink
setLogSink(LogSink sink)
{
    LogSink old = currentSink;
    currentSink = sink;
    return old;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (currentSink)
        currentSink(level, msg);
    else
        defaultSink(level, msg);
    if (level == LogLevel::kFatal)
        throw FatalError(msg);
    if (level == LogLevel::kPanic)
        throw PanicError(msg);
}

} // namespace smtflex
