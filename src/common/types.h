/**
 * @file
 * Fundamental type aliases shared by every smtflex module.
 */

#ifndef SMTFLEX_COMMON_TYPES_H
#define SMTFLEX_COMMON_TYPES_H

#include <cstdint>

namespace smtflex {

/** A clock cycle count (monotonically increasing simulated time). */
using Cycle = std::uint64_t;

/** A byte address in the simulated (per-workload) address space. */
using Addr = std::uint64_t;

/** An instruction count. */
using InstrCount = std::uint64_t;

/** Sentinel meaning "no cycle" / "never". */
inline constexpr Cycle kCycleNever = ~Cycle{0};

/** Cache line size used throughout the memory hierarchy (bytes). */
inline constexpr std::uint32_t kLineSize = 64;

/** Align @p addr down to its cache-line base address. */
inline constexpr Addr
lineAlign(Addr addr)
{
    return addr & ~Addr{kLineSize - 1};
}

} // namespace smtflex

#endif // SMTFLEX_COMMON_TYPES_H
