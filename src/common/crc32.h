/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum that
 * tags ResultCache records on disk so torn or bit-rotted lines are
 * detected on load instead of yielding corrupt results.
 */

#ifndef SMTFLEX_COMMON_CRC32_H
#define SMTFLEX_COMMON_CRC32_H

#include <array>
#include <cstdint>
#include <string>

namespace smtflex {

namespace detail {

constexpr std::array<std::uint32_t, 256>
makeCrc32Table()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c >> 1) ^ ((c & 1u) ? 0xEDB88320u : 0u);
        table[i] = c;
    }
    return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    makeCrc32Table();

} // namespace detail

/** CRC-32 of @p size bytes at @p data. */
inline std::uint32_t
crc32(const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        crc = (crc >> 8) ^ detail::kCrc32Table[(crc ^ bytes[i]) & 0xFFu];
    return crc ^ 0xFFFFFFFFu;
}

/** CRC-32 of a string's bytes. */
inline std::uint32_t
crc32(const std::string &text)
{
    return crc32(text.data(), text.size());
}

} // namespace smtflex

#endif // SMTFLEX_COMMON_CRC32_H
