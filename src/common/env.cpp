#include "env.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/log.h"

namespace smtflex {

std::optional<std::string>
envRaw(const char *name)
{
    if (const char *value = std::getenv(name))
        return std::string(value);
    return std::nullopt;
}

std::string
envString(const char *name, const std::string &fallback)
{
    const auto raw = envRaw(name);
    return raw ? *raw : fallback;
}

std::uint64_t
parseU64(const std::string &text, const std::string &what)
{
    if (text.empty() || text[0] == '-' ||
        !std::isdigit(static_cast<unsigned char>(text[0])))
        fatal(what, ": expected a non-negative integer, got '", text, "'");
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE)
        fatal(what, ": value '", text, "' out of range");
    if (end == nullptr || *end != '\0')
        fatal(what, ": trailing junk in '", text, "'");
    return static_cast<std::uint64_t>(value);
}

std::uint32_t
parseU32(const std::string &text, const std::string &what)
{
    const std::uint64_t value = parseU64(text, what);
    if (value > UINT32_MAX)
        fatal(what, ": value ", value, " out of 32-bit range");
    return static_cast<std::uint32_t>(value);
}

double
parseDouble(const std::string &text, const std::string &what)
{
    if (text.empty())
        fatal(what, ": expected a number, got an empty string");
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (errno == ERANGE)
        fatal(what, ": value '", text, "' out of range");
    if (end == nullptr || *end != '\0')
        fatal(what, ": trailing junk in '", text, "'");
    return value;
}

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const auto raw = envRaw(name);
    return raw ? parseU64(*raw, name) : fallback;
}

std::uint32_t
envU32(const char *name, std::uint32_t fallback)
{
    const auto raw = envRaw(name);
    return raw ? parseU32(*raw, name) : fallback;
}

double
envDouble(const char *name, double fallback)
{
    const auto raw = envRaw(name);
    return raw ? parseDouble(*raw, name) : fallback;
}

bool
envFlag(const char *name, bool fallback)
{
    const auto raw = envRaw(name);
    if (!raw)
        return fallback;
    std::string text = *raw;
    std::transform(text.begin(), text.end(), text.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (text == "1" || text == "true" || text == "on" || text == "yes")
        return true;
    if (text.empty() || text == "0" || text == "false" || text == "off" ||
        text == "no")
        return false;
    fatal(name, ": expected a boolean flag, got '", *raw, "'");
}

} // namespace smtflex
