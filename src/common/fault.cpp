#include "fault.h"

#include <array>
#include <mutex>

#include "common/env.h"
#include "common/log.h"

namespace smtflex {
namespace fault {

namespace detail {

std::atomic<int> gState{kUninitialised};

} // namespace detail

namespace {

constexpr std::size_t kNumSites = static_cast<std::size_t>(Site::kCount);

constexpr std::array<const char *, kNumSites> kSiteNames = {
    "io.write",       "io.fsync",       "io.load",
    "net.short_read", "net.short_write", "net.eagain",
    "net.disconnect", "exec.throw",      "exec.stall",
    "ckpt.write",     "ckpt.load",
};

struct SiteState
{
    bool armed = false;
    double probability = 1.0;
    std::uint64_t seed = 1;
    std::uint64_t after = 0;
    std::uint64_t limit = 0;
    std::uint64_t param = 0;
    bool hasParam = false;
    std::atomic<std::uint64_t> ops{0};
    std::atomic<std::uint64_t> fires{0};
};

std::array<SiteState, kNumSites> gSites;
std::mutex gConfigMutex;
std::once_flag gEnvOnce;

SiteState &
stateOf(Site site)
{
    return gSites[static_cast<std::size_t>(site)];
}

/** SplitMix64: the k-th decision draw for (seed, site) — stateless, so
 * decisions depend only on per-site arrival order. */
double
decisionDraw(std::uint64_t seed, Site site, std::uint64_t k)
{
    std::uint64_t z = seed ^
        (0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(site) + 1)) ^
        (k * 0xbf58476d1ce4e5b9ull);
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    // 53 bits of mantissa -> uniform in [0, 1).
    return static_cast<double>(z >> 11) * 0x1.0p-53;
}

Site
siteFromName(const std::string &name)
{
    for (std::size_t i = 0; i < kNumSites; ++i) {
        if (name == kSiteNames[i])
            return static_cast<Site>(i);
    }
    fatal("SMTFLEX_FAULT: unknown site '", name, "'");
}

/** Parse one `site[:k=v[;k=v...]]` spec into its site's state. */
void
applySiteSpec(const std::string &spec)
{
    const std::size_t colon = spec.find(':');
    const std::string name = spec.substr(0, colon);
    SiteState &state = stateOf(siteFromName(name));
    state.armed = true;
    state.probability = 1.0;
    state.seed = 1;
    state.after = 0;
    state.limit = 0;
    state.param = 0;
    state.hasParam = false;
    state.ops.store(0);
    state.fires.store(0);
    if (colon == std::string::npos)
        return;
    std::string rest = spec.substr(colon + 1);
    std::size_t pos = 0;
    while (pos <= rest.size()) {
        const std::size_t semi = rest.find(';', pos);
        const std::string kv = rest.substr(
            pos, semi == std::string::npos ? std::string::npos : semi - pos);
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos || eq == 0)
            fatal("SMTFLEX_FAULT: '", kv, "' in '", spec,
                  "' is not key=value");
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        const std::string what = "SMTFLEX_FAULT " + name + ":" + key;
        if (key == "p") {
            state.probability = parseDouble(value, what);
            if (state.probability < 0.0 || state.probability > 1.0)
                fatal(what, ": probability ", value, " not in [0, 1]");
        } else if (key == "seed") {
            state.seed = parseU64(value, what);
        } else if (key == "after") {
            state.after = parseU64(value, what);
        } else if (key == "limit") {
            state.limit = parseU64(value, what);
        } else if (key == "param") {
            state.param = parseU64(value, what);
            state.hasParam = true;
        } else {
            fatal("SMTFLEX_FAULT: unknown key '", key, "' for site '", name,
                  "'");
        }
        if (semi == std::string::npos)
            break;
        pos = semi + 1;
    }
}

/** Re-derive the armed/disarmed fast-path flag. Caller holds gConfigMutex. */
void
publishState()
{
    for (const SiteState &state : gSites) {
        if (state.armed) {
            detail::gState.store(detail::kArmed, std::memory_order_release);
            return;
        }
    }
    detail::gState.store(detail::kDisarmed, std::memory_order_release);
}

void
configureLocked(const std::string &spec)
{
    for (SiteState &state : gSites) {
        state.armed = false;
        state.ops.store(0);
        state.fires.store(0);
    }
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string one = spec.substr(
            pos,
            comma == std::string::npos ? std::string::npos : comma - pos);
        if (one.empty())
            fatal("SMTFLEX_FAULT: empty site spec in '", spec, "'");
        applySiteSpec(one);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    publishState();
}

void
loadEnvOnce()
{
    std::call_once(gEnvOnce, [] {
        std::lock_guard<std::mutex> lock(gConfigMutex);
        if (detail::gState.load(std::memory_order_acquire) !=
            detail::kUninitialised)
            return; // configure() ran first; it wins
        configureLocked(envString("SMTFLEX_FAULT", ""));
    });
}

} // namespace

const char *
siteName(Site site)
{
    return kSiteNames[static_cast<std::size_t>(site)];
}

void
configure(const std::string &spec)
{
    std::lock_guard<std::mutex> lock(gConfigMutex);
    configureLocked(spec);
}

void
reset()
{
    configure("");
}

std::uint64_t
fires(Site site)
{
    return stateOf(site).fires.load(std::memory_order_relaxed);
}

std::uint64_t
ops(Site site)
{
    return stateOf(site).ops.load(std::memory_order_relaxed);
}

std::uint64_t
param(Site site, std::uint64_t fallback)
{
    const SiteState &state = stateOf(site);
    return state.armed && state.hasParam ? state.param : fallback;
}

namespace detail {

bool
shouldFireSlow(Site site)
{
    loadEnvOnce();
    if (gState.load(std::memory_order_acquire) != kArmed)
        return false;
    SiteState &state = stateOf(site);
    if (!state.armed)
        return false;
    const std::uint64_t k =
        state.ops.fetch_add(1, std::memory_order_relaxed);
    if (k < state.after)
        return false;
    if (state.limit != 0 &&
        state.fires.load(std::memory_order_relaxed) >= state.limit)
        return false;
    if (decisionDraw(state.seed, site, k) >= state.probability)
        return false;
    state.fires.fetch_add(1, std::memory_order_relaxed);
    return true;
}

} // namespace detail

} // namespace fault
} // namespace smtflex
