/**
 * @file
 * Typed access to SMTFLEX_* environment variables.
 *
 * Every subsystem that reads configuration from the environment goes
 * through these helpers instead of raw std::getenv + atoi: malformed
 * values (empty, trailing junk, out of range) are a user error and
 * fatal() with the variable name, rather than silently parsing to 0.
 */

#ifndef SMTFLEX_COMMON_ENV_H
#define SMTFLEX_COMMON_ENV_H

#include <cstdint>
#include <optional>
#include <string>

namespace smtflex {

/** Raw value of @p name, or nullopt when unset. */
std::optional<std::string> envRaw(const char *name);

/**
 * Parse @p text as a non-negative integer; fatal() naming @p what on
 * malformed values (empty, negative, trailing junk, overflow). The env
 * readers below, CLI flag parsing and the serve protocol's integer fields
 * all route through this one strict parser.
 */
std::uint64_t parseU64(const std::string &text, const std::string &what);

/** Like parseU64 but range-checked to 32 bits. */
std::uint32_t parseU32(const std::string &text, const std::string &what);

/** Parse @p text as a floating-point value; fatal() naming @p what on
 * malformed values. */
double parseDouble(const std::string &text, const std::string &what);

/** String value of @p name, or @p fallback when unset. */
std::string envString(const char *name, const std::string &fallback);

/** Unsigned integer value of @p name; fatal() on malformed values
 * (non-numeric, negative, trailing junk, overflow). */
std::uint64_t envU64(const char *name, std::uint64_t fallback);

/** Like envU64 but range-checked to 32 bits. */
std::uint32_t envU32(const char *name, std::uint32_t fallback);

/** Floating-point value of @p name; fatal() on malformed values. */
double envDouble(const char *name, double fallback);

/**
 * Boolean flag: 1/true/on/yes enable, 0/false/off/no and the empty string
 * disable; anything else is fatal(). Matching is case-insensitive.
 */
bool envFlag(const char *name, bool fallback);

} // namespace smtflex

#endif // SMTFLEX_COMMON_ENV_H
