#include "rng.h"

#include <cassert>
#include <cmath>

namespace smtflex {

namespace {

/** SplitMix64 step, used only to expand seeds into xoshiro state. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
{
    // Mix the stream id into the seed expansion so that (seed, 0) and
    // (seed, 1) are unrelated sequences.
    std::uint64_t x = seed ^ (stream * 0xda942042e4dd58b5ULL + 0x9e3779b9ULL);
    for (auto &word : s_)
        word = splitMix64(x);
    // xoshiro must not be seeded with the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::nextDouble()
{
    // 53 top bits -> [0, 1) with full double precision.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::nextRange(std::uint64_t bound)
{
    assert(bound > 0);
    // Multiply-shift range reduction; bias is negligible for our bounds
    // (all far below 2^48) and determinism is what matters here.
    unsigned __int128 product = static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
}

std::int64_t
Rng::nextInt(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
        nextRange(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint32_t
Rng::nextGeometric(double mean)
{
    assert(mean >= 1.0);
    if (mean == 1.0)
        return 1;
    // Support {1, 2, ...}: success probability p = 1/mean.
    const double p = 1.0 / mean;
    const double u = nextDouble();
    // Inverse CDF; u == 0 maps to 1.
    const double v = std::log1p(-u) / std::log1p(-p);
    double k = std::floor(v) + 1.0;
    if (k < 1.0)
        k = 1.0;
    if (k > 4096.0)
        k = 4096.0; // clamp pathological tails, keeps models bounded
    return static_cast<std::uint32_t>(k);
}

double
Rng::nextGaussian()
{
    // Box-Muller; draw until the radius is usable.
    double u1 = nextDouble();
    while (u1 <= 1e-300)
        u1 = nextDouble();
    const double u2 = nextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double
Rng::nextLognormal(double mean, double cv)
{
    assert(mean > 0.0);
    if (cv <= 0.0)
        return mean;
    const double sigma2 = std::log1p(cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(mu + std::sqrt(sigma2) * nextGaussian());
}

} // namespace smtflex
