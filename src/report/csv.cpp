#include "csv.h"

#include <sstream>

#include "common/log.h"

namespace smtflex {

std::string
CsvWriter::escape(const std::string &field)
{
    const bool needs_quotes =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string quoted = "\"";
    for (const char c : field) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

CsvWriter::CsvWriter(std::ostream &out, std::vector<std::string> columns)
    : out_(out), columns_(columns.size())
{
    if (columns.empty())
        fatal("CsvWriter: no columns");
    for (std::size_t i = 0; i < columns.size(); ++i)
        out_ << (i ? "," : "") << escape(columns[i]);
    out_ << "\n";
}

void
CsvWriter::row(const std::vector<std::string> &values)
{
    if (values.size() != columns_)
        fatal("CsvWriter: row has ", values.size(), " fields, header has ",
              columns_);
    for (std::size_t i = 0; i < values.size(); ++i)
        out_ << (i ? "," : "") << escape(values[i]);
    out_ << "\n";
    ++rows_;
}

CsvWriter::RowBuilder &
CsvWriter::RowBuilder::add(const std::string &value)
{
    values_.push_back(value);
    return *this;
}

CsvWriter::RowBuilder &
CsvWriter::RowBuilder::add(double value)
{
    std::ostringstream os;
    os.precision(10);
    os << value;
    values_.push_back(os.str());
    return *this;
}

CsvWriter::RowBuilder &
CsvWriter::RowBuilder::add(std::uint64_t value)
{
    values_.push_back(std::to_string(value));
    return *this;
}

void
CsvWriter::RowBuilder::done()
{
    writer_.row(values_);
}

} // namespace smtflex
