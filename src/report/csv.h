/**
 * @file
 * Minimal CSV writing: proper quoting, fixed column sets, stream-based so
 * it works for files and tests alike. Used to export simulation results
 * for external plotting.
 */

#ifndef SMTFLEX_REPORT_CSV_H
#define SMTFLEX_REPORT_CSV_H

#include <ostream>
#include <string>
#include <vector>

namespace smtflex {

/**
 * Writes rows of a fixed-width CSV table with RFC-4180-style quoting.
 */
class CsvWriter
{
  public:
    /** Bind to a stream and emit the header row. */
    CsvWriter(std::ostream &out, std::vector<std::string> columns);

    /** Append one row; must match the column count. */
    void row(const std::vector<std::string> &values);

    /** Convenience: mixed string/double row. */
    class RowBuilder
    {
      public:
        explicit RowBuilder(CsvWriter &writer) : writer_(writer) {}
        RowBuilder &add(const std::string &value);
        RowBuilder &add(double value);
        RowBuilder &add(std::uint64_t value);
        /** Emit the row. */
        void done();

      private:
        CsvWriter &writer_;
        std::vector<std::string> values_;
    };

    RowBuilder beginRow() { return RowBuilder(*this); }

    std::size_t rowsWritten() const { return rows_; }

    /** Quote a field per RFC 4180 when needed. */
    static std::string escape(const std::string &field);

  private:
    std::ostream &out_;
    std::size_t columns_;
    std::size_t rows_ = 0;
};

} // namespace smtflex

#endif // SMTFLEX_REPORT_CSV_H
