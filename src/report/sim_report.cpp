#include "sim_report.h"

#include <iomanip>

#include "report/csv.h"
#include "sim/power_summary.h"

namespace smtflex {

namespace {

/**
 * The readings to render: a ChipSim-collected result carries its registry
 * snapshot; hand-built results get the identical snapshot rebuilt from
 * their structs. Either way the report below reads metric paths, not
 * struct members.
 */
telemetry::Snapshot
resultMetrics(const SimResult &result)
{
    return result.metrics.empty() ? rebuildResultMetrics(result)
                                  : result.metrics;
}

/** missRate()/avg-latency idiom over snapshot counters: num/den as a
 * double, 0 when the denominator is 0 (same expression the stats structs
 * used, so the doubles are bit-identical). */
double
perUnit(const telemetry::Snapshot &metrics, const std::string &num,
        const std::string &den)
{
    const std::uint64_t d = metrics.u64(den);
    return d ? static_cast<double>(metrics.u64(num)) / d : 0.0;
}

double
cacheMissRate(const telemetry::Snapshot &metrics, const std::string &prefix)
{
    return perUnit(metrics, prefix + ".misses", prefix + ".accesses");
}

} // namespace

void
writeTextReport(std::ostream &out, const SimResult &result,
                const PowerModel &power)
{
    const telemetry::Snapshot metrics = resultMetrics(result);
    const Cycle chip_cycles = metrics.u64("chip.cycles");
    const double freq_ghz = metrics.at("chip.freq_ghz").asDouble();
    const double seconds =
        static_cast<double>(chip_cycles) / (freq_ghz * 1e9);

    out << "=== smtflex simulation report: "
        << metrics.at("chip.config").asString() << " ===\n";
    out << "cycles: " << chip_cycles << " (" << std::setprecision(4)
        << seconds * 1e6 << " us @ " << freq_ghz << " GHz)\n";
    if (metrics.at("chip.hit_cycle_limit").asBool())
        out << "WARNING: run hit the cycle limit\n";

    out << "\nthreads (" << result.threads.size() << "):\n";
    for (const auto &t : result.threads) {
        out << "  " << std::left << std::setw(14) << t.benchmark
            << std::right << " ipc " << std::fixed << std::setprecision(3)
            << t.ipc() << (t.finished ? "" : "  [unfinished]") << "\n";
        out.unsetf(std::ios::fixed);
    }

    out << "\ncores (" << result.cores.size() << "):\n";
    for (std::size_t i = 0; i < result.cores.size(); ++i) {
        const std::string prefix = "core." + std::to_string(i);
        const double cycles = static_cast<double>(
            std::max<Cycle>(metrics.u64(prefix + ".core_cycles"), 1));
        out << "  core" << i << " (" << result.cores[i].params.name
            << "): retired " << metrics.u64(prefix + ".retired") << ", ipc "
            << std::fixed << std::setprecision(3)
            << metrics.u64(prefix + ".retired") / cycles << ", busy "
            << metrics.u64(prefix + ".busy_cycles") / cycles << ", l1d miss "
            << cacheMissRate(metrics, prefix + ".l1d") << ", l2 miss "
            << cacheMissRate(metrics, prefix + ".l2") << "\n";
        out.unsetf(std::ios::fixed);
    }

    const PowerSummary gated = summarisePower(result, power, true);
    out << "\nshared: llc miss " << std::fixed << std::setprecision(3)
        << cacheMissRate(metrics, "llc") << ", dram reads "
        << metrics.u64("dram.reads") << ", writes "
        << metrics.u64("dram.writes") << ", avg read latency "
        << std::setprecision(1)
        << perUnit(metrics, "dram.total_latency_cycles", "dram.reads")
        << "\n";
    out << "power (gated): " << gated.avgPowerW << " W, energy "
        << std::scientific << std::setprecision(2) << gated.energyJ
        << " J\n";
    out.unsetf(std::ios::scientific);
    out.unsetf(std::ios::fixed);
}

void
writeThreadCsv(std::ostream &out, const SimResult &result)
{
    CsvWriter csv(out, {"config", "thread", "benchmark", "budget",
                        "start_cycle", "finish_cycle", "ipc", "finished"});
    for (std::size_t i = 0; i < result.threads.size(); ++i) {
        const auto &t = result.threads[i];
        csv.beginRow()
            .add(result.configName)
            .add(static_cast<std::uint64_t>(i))
            .add(t.benchmark)
            .add(static_cast<std::uint64_t>(t.budget))
            .add(static_cast<std::uint64_t>(t.startCycle))
            .add(static_cast<std::uint64_t>(
                t.finished ? t.finishCycle : 0))
            .add(t.ipc())
            .add(std::string(t.finished ? "1" : "0"))
            .done();
    }
}

void
writeCoreCsv(std::ostream &out, const SimResult &result,
             const PowerModel &power)
{
    const telemetry::Snapshot metrics = resultMetrics(result);
    CsvWriter csv(out, {"config", "core", "type", "retired", "core_cycles",
                        "busy_frac", "l1i_miss", "l1d_miss", "l2_miss",
                        "powered_frac", "static_w", "dynamic_j"});
    for (std::size_t i = 0; i < result.cores.size(); ++i) {
        const auto &core = result.cores[i];
        const std::string prefix = "core." + std::to_string(i);
        const double cycles = static_cast<double>(
            std::max<Cycle>(metrics.u64(prefix + ".core_cycles"), 1));
        const double total = static_cast<double>(
            std::max<Cycle>(metrics.u64("chip.cycles"), 1));
        csv.beginRow()
            .add(metrics.at("chip.config").asString())
            .add(static_cast<std::uint64_t>(i))
            .add(std::string(coreTypeTag(core.params.type)))
            .add(metrics.u64(prefix + ".retired"))
            .add(metrics.u64(prefix + ".core_cycles"))
            .add(metrics.u64(prefix + ".busy_cycles") / cycles)
            .add(cacheMissRate(metrics, prefix + ".l1i"))
            .add(cacheMissRate(metrics, prefix + ".l1d"))
            .add(cacheMissRate(metrics, prefix + ".l2"))
            .add(metrics.u64(prefix + ".powered_cycles") / total)
            .add(power.coreStaticW(core.params))
            .add(power.coreDynamicJ(core.params, core.stats))
            .done();
    }
}

} // namespace smtflex
