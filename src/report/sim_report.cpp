#include "sim_report.h"

#include <iomanip>

#include "report/csv.h"
#include "sim/power_summary.h"

namespace smtflex {

void
writeTextReport(std::ostream &out, const SimResult &result,
                const PowerModel &power)
{
    out << "=== smtflex simulation report: " << result.configName
        << " ===\n";
    out << "cycles: " << result.cycles << " ("
        << std::setprecision(4) << result.seconds() * 1e6 << " us @ "
        << result.chipFreqGHz << " GHz)\n";
    if (result.hitCycleLimit)
        out << "WARNING: run hit the cycle limit\n";

    out << "\nthreads (" << result.threads.size() << "):\n";
    for (const auto &t : result.threads) {
        out << "  " << std::left << std::setw(14) << t.benchmark
            << std::right << " ipc " << std::fixed << std::setprecision(3)
            << t.ipc() << (t.finished ? "" : "  [unfinished]") << "\n";
        out.unsetf(std::ios::fixed);
    }

    out << "\ncores (" << result.cores.size() << "):\n";
    for (std::size_t i = 0; i < result.cores.size(); ++i) {
        const auto &core = result.cores[i];
        const double cycles = static_cast<double>(
            std::max<Cycle>(core.stats.coreCycles, 1));
        out << "  core" << i << " (" << core.params.name << "): retired "
            << core.stats.retired << ", ipc " << std::fixed
            << std::setprecision(3) << core.stats.retired / cycles
            << ", busy " << core.stats.busyCycles / cycles << ", l1d miss "
            << core.l1d.missRate() << ", l2 miss " << core.l2.missRate()
            << "\n";
        out.unsetf(std::ios::fixed);
    }

    const PowerSummary gated = summarisePower(result, power, true);
    out << "\nshared: llc miss " << std::fixed << std::setprecision(3)
        << result.llc.missRate() << ", dram reads " << result.dram.reads
        << ", writes " << result.dram.writes << ", avg read latency "
        << std::setprecision(1) << result.dram.avgReadLatency() << "\n";
    out << "power (gated): " << gated.avgPowerW << " W, energy "
        << std::scientific << std::setprecision(2) << gated.energyJ
        << " J\n";
    out.unsetf(std::ios::scientific);
    out.unsetf(std::ios::fixed);
}

void
writeThreadCsv(std::ostream &out, const SimResult &result)
{
    CsvWriter csv(out, {"config", "thread", "benchmark", "budget",
                        "start_cycle", "finish_cycle", "ipc", "finished"});
    for (std::size_t i = 0; i < result.threads.size(); ++i) {
        const auto &t = result.threads[i];
        csv.beginRow()
            .add(result.configName)
            .add(static_cast<std::uint64_t>(i))
            .add(t.benchmark)
            .add(static_cast<std::uint64_t>(t.budget))
            .add(static_cast<std::uint64_t>(t.startCycle))
            .add(static_cast<std::uint64_t>(
                t.finished ? t.finishCycle : 0))
            .add(t.ipc())
            .add(std::string(t.finished ? "1" : "0"))
            .done();
    }
}

void
writeCoreCsv(std::ostream &out, const SimResult &result,
             const PowerModel &power)
{
    CsvWriter csv(out, {"config", "core", "type", "retired", "core_cycles",
                        "busy_frac", "l1i_miss", "l1d_miss", "l2_miss",
                        "powered_frac", "static_w", "dynamic_j"});
    for (std::size_t i = 0; i < result.cores.size(); ++i) {
        const auto &core = result.cores[i];
        const double cycles = static_cast<double>(
            std::max<Cycle>(core.stats.coreCycles, 1));
        const double total = static_cast<double>(
            std::max<Cycle>(result.cycles, 1));
        csv.beginRow()
            .add(result.configName)
            .add(static_cast<std::uint64_t>(i))
            .add(std::string(coreTypeTag(core.params.type)))
            .add(static_cast<std::uint64_t>(core.stats.retired))
            .add(static_cast<std::uint64_t>(core.stats.coreCycles))
            .add(core.stats.busyCycles / cycles)
            .add(core.l1i.missRate())
            .add(core.l1d.missRate())
            .add(core.l2.missRate())
            .add(core.poweredCycles / total)
            .add(power.coreStaticW(core.params))
            .add(power.coreDynamicJ(core.params, core.stats))
            .done();
    }
}

} // namespace smtflex
