/**
 * @file
 * Structured reporting of simulation results: a human-readable text
 * summary and CSV exports (per-thread and per-core rows) for external
 * plotting.
 */

#ifndef SMTFLEX_REPORT_SIM_REPORT_H
#define SMTFLEX_REPORT_SIM_REPORT_H

#include <ostream>
#include <string>

#include "power/power_model.h"
#include "sim/chip_sim.h"

namespace smtflex {

/** Write a readable multi-line summary of @p result to @p out. */
void writeTextReport(std::ostream &out, const SimResult &result,
                     const PowerModel &power);

/** Write one CSV row per thread: benchmark, ipc, window cycles, etc. */
void writeThreadCsv(std::ostream &out, const SimResult &result);

/** Write one CSV row per core: type, retired, ipc, cache miss rates,
 * powered fraction, estimated power. */
void writeCoreCsv(std::ostream &out, const SimResult &result,
                  const PowerModel &power);

} // namespace smtflex

#endif // SMTFLEX_REPORT_SIM_REPORT_H
